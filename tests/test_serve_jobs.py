"""Job queue, lifecycle state machine and journal of ``repro.serve``.

Three layers of coverage:

* example-based tests of every legal and illegal transition;
* journal persistence + recovery (including the torn-tail contract);
* a Hypothesis *stateful* suite driving the machine with arbitrary
  event interleavings and checking the global invariants after every
  step — no job is ever lost, duplicated, or stuck in a state without
  a legal exit.
"""

import json

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.serve import (
    CANCELLED,
    DONE,
    FAILED,
    PENDING,
    RUNNING,
    TERMINAL_STATES,
    Job,
    JobJournal,
    JobQueue,
    JobStateError,
    derive_job_seed,
    evict_jobs,
    load_job_journal,
    recover_jobs,
    rewrite_journal,
)


def make_job(job_id="j1", priority=0, max_attempts=2, **kwargs):
    return Job(
        job_id=job_id,
        job_kind=kwargs.pop("job_kind", "ler"),
        params=kwargs.pop("params", {"physical_error_rate": 0.01}),
        priority=priority,
        max_attempts=max_attempts,
        seed=kwargs.pop("seed", derive_job_seed(job_id)),
        **kwargs,
    )


class TestDeriveJobSeed:
    def test_deterministic_and_distinct(self):
        assert derive_job_seed("a") == derive_job_seed("a")
        assert derive_job_seed("a") != derive_job_seed("b")

    def test_non_negative_31_bit(self):
        for job_id in ("x", "y", "job-000017", "☃"):
            seed = derive_job_seed(job_id)
            assert 0 <= seed < 2**31


class TestLifecycle:
    def test_submit_claim_complete(self):
        queue = JobQueue()
        queue.submit(make_job())
        job = queue.claim()
        assert job.state == RUNNING
        assert job.attempts == 1
        done = queue.complete("j1", {"answer": 42})
        assert done.state == DONE
        assert done.result == {"answer": 42}

    def test_fail_requeues_until_attempts_spent(self):
        queue = JobQueue()
        queue.submit(make_job(max_attempts=3))
        for attempt in range(1, 3):
            assert queue.claim().attempts == attempt
            assert queue.fail("j1", "boom").state == PENDING
        assert queue.claim().attempts == 3
        failed = queue.fail("j1", "boom")
        assert failed.state == FAILED
        assert failed.error == "boom"

    def test_timeout_is_a_retryable_failure(self):
        queue = JobQueue()
        queue.submit(make_job(max_attempts=2))
        queue.claim()
        assert queue.timeout("j1").state == PENDING
        queue.claim()
        timed_out = queue.timeout("j1")
        assert timed_out.state == FAILED
        assert timed_out.error == "timeout"

    def test_cancel_pending_is_immediate(self):
        queue = JobQueue()
        queue.submit(make_job())
        assert queue.cancel("j1").state == CANCELLED
        assert queue.claim() is None

    def test_cancel_running_settles_on_completion(self):
        queue = JobQueue()
        queue.submit(make_job())
        queue.claim()
        assert queue.cancel("j1").state == RUNNING
        settled = queue.complete("j1", {"ignored": True})
        assert settled.state == CANCELLED
        assert settled.result is None

    def test_cancel_running_settles_on_failure_without_retry(self):
        queue = JobQueue()
        queue.submit(make_job(max_attempts=5))
        queue.claim()
        queue.cancel("j1")
        assert queue.fail("j1", "boom").state == CANCELLED

    def test_priority_then_fifo_claim_order(self):
        queue = JobQueue()
        for job_id, priority in (
            ("low1", 0), ("high", 5), ("low2", 0),
        ):
            queue.submit(make_job(job_id, priority=priority))
        assert [queue.claim().job_id for _ in range(3)] == [
            "high", "low1", "low2",
        ]

    def test_invalid_transitions_raise(self):
        queue = JobQueue()
        with pytest.raises(JobStateError):
            queue.complete("ghost", {})
        queue.submit(make_job())
        with pytest.raises(JobStateError):
            queue.complete("j1", {})  # pending, not running
        with pytest.raises(JobStateError):
            queue.submit(make_job())  # duplicate id
        with pytest.raises(JobStateError):
            queue.submit(make_job("j2", job_kind="nonsense"))
        queue.claim()
        queue.complete("j1", {})
        with pytest.raises(JobStateError):
            queue.cancel("j1")  # terminal

    def test_counts_cover_every_state(self):
        queue = JobQueue()
        assert queue.counts() == {
            PENDING: 0, RUNNING: 0, DONE: 0,
            FAILED: 0, CANCELLED: 0,
        }
        queue.submit(make_job())
        queue.submit(make_job("j2"))
        queue.claim()
        counts = queue.counts()
        assert counts[PENDING] == 1
        assert counts[RUNNING] == 1

    def test_transition_hook_sees_every_event(self):
        events = []
        queue = JobQueue(
            on_transition=lambda e, j: events.append((e, j.state))
        )
        queue.submit(make_job(max_attempts=2))
        queue.claim()
        queue.fail("j1", "x")
        queue.claim()
        queue.complete("j1", {})
        assert events == [
            ("submitted", PENDING),
            ("started", RUNNING),
            ("requeued", PENDING),
            ("started", RUNNING),
            ("done", DONE),
        ]


class TestJournal:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        journal = JobJournal(path)
        queue = JobQueue(on_transition=journal.record)
        queue.submit(make_job())
        queue.claim()
        queue.complete("j1", {"v": 1})
        journal.close()
        events = load_job_journal(path)
        assert [e["event"] for e in events] == [
            "submitted", "started", "done",
        ]
        assert events[-1]["job"]["result"] == {"v": 1}

    def test_torn_final_line_is_dropped(self, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        journal = JobJournal(path)
        queue = JobQueue(on_transition=journal.record)
        queue.submit(make_job())
        journal.close()
        with open(path, "a") as handle:
            handle.write('{"kind": "job_event", "ev')  # kill mid-write
        events = load_job_journal(path)
        assert [e["event"] for e in events] == ["submitted"]

    def test_malformed_interior_line_raises(self, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        with open(path, "w") as handle:
            handle.write("not json\n")
            handle.write('{"kind": "job_event"}\n')
        with pytest.raises(ValueError, match="malformed"):
            load_job_journal(path)

    def test_unknown_record_kind_raises(self, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        with open(path, "w") as handle:
            handle.write(json.dumps({"kind": "mystery"}) + "\n")
        with pytest.raises(ValueError, match="unknown"):
            load_job_journal(path)


class TestRecovery:
    def _journaled_queue(self, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        journal = JobJournal(path)
        queue = JobQueue(on_transition=journal.record)
        return path, journal, queue

    def test_missing_journal_recovers_nothing(self, tmp_path):
        queue = JobQueue()
        assert recover_jobs(str(tmp_path / "absent.jsonl"), queue) == 0
        assert len(queue) == 0

    def test_terminal_jobs_restore_with_results(self, tmp_path):
        path, journal, queue = self._journaled_queue(tmp_path)
        queue.submit(make_job())
        queue.claim()
        queue.complete("j1", {"v": 7})
        journal.close()
        fresh = JobQueue()
        assert recover_jobs(path, fresh) == 0
        job = fresh.get("j1")
        assert job.state == DONE
        assert job.result == {"v": 7}
        assert fresh.claim() is None  # terminal jobs are not claimable

    def test_running_job_requeues_with_attempt_uncharged(
        self, tmp_path
    ):
        path, journal, queue = self._journaled_queue(tmp_path)
        queue.submit(make_job(max_attempts=2))
        queue.claim()  # server dies here: journal's last state RUNNING
        journal.close()
        fresh = JobQueue()
        assert recover_jobs(path, fresh) == 1
        job = fresh.get("j1")
        assert job.state == PENDING
        # The interrupted attempt is not charged: the re-run still has
        # the full retry budget it had when it was first claimed.
        assert job.attempts == 0
        assert fresh.claim().job_id == "j1"

    def test_pending_job_survives_restart_in_claim_order(
        self, tmp_path
    ):
        path, journal, queue = self._journaled_queue(tmp_path)
        queue.submit(make_job("a", priority=0))
        queue.submit(make_job("b", priority=3))
        journal.close()
        fresh = JobQueue()
        recover_jobs(path, fresh)
        assert fresh.claim().job_id == "b"
        assert fresh.claim().job_id == "a"

    def test_recovered_queue_accepts_new_submissions(self, tmp_path):
        path, journal, queue = self._journaled_queue(tmp_path)
        queue.submit(make_job())
        queue.claim()
        queue.complete("j1", {})
        journal.close()
        fresh = JobQueue()
        recover_jobs(path, fresh)
        fresh.submit(make_job("j2"))
        assert fresh.get("j2").submitted_seq > fresh.get(
            "j1"
        ).submitted_seq

    def test_double_restart_is_stable(self, tmp_path):
        """Recovering twice in a row reaches the same queue state."""
        path, journal, queue = self._journaled_queue(tmp_path)
        queue.submit(make_job("a"))
        queue.submit(make_job("b"))
        queue.claim()
        journal.close()

        def snapshot(q):
            return {
                job_id: (j.state, j.attempts)
                for job_id, j in q.jobs.items()
            }

        first = JobQueue(
            on_transition=JobJournal(path, append=True).record
        )
        recover_jobs(path, first)
        second = JobQueue()
        recover_jobs(path, second)
        assert snapshot(first) == snapshot(second)


class TestEvictionAndCompaction:
    """TTL/size-bounded retention plus boot-time journal compaction."""

    def _finished_queue(self, count, base_time=1_000.0):
        queue = JobQueue()
        for index in range(count):
            job = make_job(job_id=f"j{index}")
            queue.submit(job)
            queue.claim()
            queue.complete(job.job_id, {"v": index})
            job.finished_at = base_time + index
        return queue

    def test_ttl_evicts_only_expired_terminal_jobs(self):
        queue = self._finished_queue(4)
        queue.submit(make_job(job_id="pending"))
        evicted = evict_jobs(queue, job_ttl=1.5, now=1_003.0)
        assert sorted(evicted) == ["j0", "j1"]
        assert sorted(queue.jobs) == ["j2", "j3", "pending"]

    def test_max_jobs_keeps_newest_finished(self):
        queue = self._finished_queue(5)
        evicted = evict_jobs(queue, max_jobs=2)
        assert sorted(evicted) == ["j0", "j1", "j2"]
        assert sorted(queue.jobs) == ["j3", "j4"]

    def test_pending_and_running_never_evicted(self):
        queue = JobQueue()
        for index in range(3):
            queue.submit(make_job(job_id=f"live{index}"))
        queue.claim()
        evicted = evict_jobs(queue, job_ttl=0.0, max_jobs=1, now=1e9)
        assert evicted == []
        assert len(queue.jobs) == 3

    def test_both_bounds_compose(self):
        queue = self._finished_queue(6)
        evicted = evict_jobs(
            queue, job_ttl=2.5, max_jobs=2, now=1_005.0
        )
        # TTL drops j0..j2 (older than 2.5 s before now), then the
        # size bound drops j3 to reach 2.
        assert sorted(evicted) == ["j0", "j1", "j2", "j3"]
        assert sorted(queue.jobs) == ["j4", "j5"]

    def test_rewrite_journal_is_replayable(self, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        journal = JobJournal(path)
        queue = JobQueue(on_transition=journal.record)
        for index in range(3):
            job = make_job(job_id=f"j{index}")
            queue.submit(job)
            queue.claim()
            queue.complete(job.job_id, {"v": index})
        journal.close()
        assert len(load_job_journal(path)) == 9  # 3 transitions each
        evict_jobs(queue, max_jobs=1)
        rewrite_journal(path, queue)
        events = load_job_journal(path)
        assert len(events) == 1
        assert events[0]["event"] == "compacted"
        replayed = JobQueue()
        recover_jobs(path, replayed)
        assert sorted(replayed.jobs) == ["j2"]
        assert replayed.jobs["j2"].result == {"v": 2}

    def test_journal_bounded_under_churn(self, tmp_path):
        """Submit/complete churn across restarts stays bounded.

        Models the serve boot sequence: each cycle replays the
        journal, evicts to ``max_jobs``, compacts, then appends a new
        burst of finished jobs.  Without compaction the journal grows
        by three lines per job forever; with it, every boot returns
        the file to at most ``max_jobs`` lines.
        """
        path = str(tmp_path / "jobs.jsonl")
        max_jobs = 3
        line_counts = []
        for cycle in range(5):
            queue = JobQueue()
            recover_jobs(path, queue)
            evict_jobs(queue, max_jobs=max_jobs)
            rewrite_journal(path, queue)
            line_counts.append(len(load_job_journal(path)))
            journal = JobJournal(path, append=True)
            queue._on_transition = journal.record
            for index in range(4):
                job_id = f"c{cycle}-j{index}"
                queue.submit(make_job(job_id=job_id))
                queue.claim()
                queue.complete(job_id, {"cycle": cycle})
            journal.close()
        assert all(count <= max_jobs for count in line_counts)
        # ... while an append-only journal would have kept growing:
        # 4 jobs x 3 transitions per cycle.
        final = JobQueue()
        recover_jobs(path, final)
        evict_jobs(final, max_jobs=max_jobs)
        assert len(final.jobs) == max_jobs


class JobLifecycleMachine(RuleBasedStateMachine):
    """Arbitrary interleavings of queue events keep the invariants.

    The model tracks only what was submitted; the queue under test is
    driven through claims, completions, failures and cancels in any
    order Hypothesis finds, with illegal transitions expected to raise
    rather than corrupt state.
    """

    def __init__(self):
        super().__init__()
        self.queue = JobQueue()
        self.submitted = set()
        self.claimed = set()
        self.next_id = 0

    @rule(priority=st.integers(-5, 5), attempts=st.integers(1, 3))
    def submit(self, priority, attempts):
        job_id = f"job{self.next_id}"
        self.next_id += 1
        self.queue.submit(
            make_job(job_id, priority=priority, max_attempts=attempts)
        )
        self.submitted.add(job_id)

    @precondition(lambda self: len(self.submitted) > 0)
    @rule()
    def claim(self):
        job = self.queue.claim()
        if job is not None:
            assert job.state == RUNNING
            self.claimed.add(job.job_id)

    @precondition(lambda self: len(self.claimed) > 0)
    @rule(data=st.data())
    def complete(self, data):
        job_id = data.draw(
            st.sampled_from(sorted(self.claimed)), label="complete"
        )
        job = self.queue.get(job_id)
        if job.state == RUNNING:
            settled = self.queue.complete(job_id, {"ok": True})
            assert settled.state in (DONE, CANCELLED)
        else:
            with pytest.raises(JobStateError):
                self.queue.complete(job_id, {})

    @precondition(lambda self: len(self.claimed) > 0)
    @rule(data=st.data())
    def fail(self, data):
        job_id = data.draw(
            st.sampled_from(sorted(self.claimed)), label="fail"
        )
        job = self.queue.get(job_id)
        if job.state == RUNNING:
            settled = self.queue.fail(job_id, "boom")
            assert settled.state in (PENDING, FAILED, CANCELLED)
        else:
            with pytest.raises(JobStateError):
                self.queue.fail(job_id, "boom")

    @precondition(lambda self: len(self.submitted) > 0)
    @rule(data=st.data())
    def cancel(self, data):
        job_id = data.draw(
            st.sampled_from(sorted(self.submitted)), label="cancel"
        )
        job = self.queue.get(job_id)
        if job.state in TERMINAL_STATES:
            with pytest.raises(JobStateError):
                self.queue.cancel(job_id)
        else:
            self.queue.cancel(job_id)

    @invariant()
    def no_job_lost_or_duplicated(self):
        assert set(self.queue.jobs) == self.submitted
        assert len(self.queue.jobs) == len(self.submitted)

    @invariant()
    def states_are_legal(self):
        for job in self.queue.jobs.values():
            assert job.state in (
                PENDING, RUNNING, DONE, FAILED, CANCELLED,
            )
            assert 0 <= job.attempts <= job.max_attempts

    @invariant()
    def no_stuck_jobs(self):
        """Every non-terminal job still has a legal exit."""
        for job in self.queue.jobs.values():
            if job.state == PENDING:
                # Must be reachable by some future claim: its heap
                # entry exists (possibly shadowed, never dropped).
                assert any(
                    entry[2] == job.job_id
                    for entry in self.queue._heap
                )
            elif job.state == RUNNING:
                assert job.attempts >= 1

    @invariant()
    def terminal_jobs_are_consistent(self):
        for job in self.queue.jobs.values():
            if job.state == DONE:
                assert job.result is not None
            if job.state == FAILED:
                assert job.error is not None
                assert job.attempts == job.max_attempts


TestJobLifecycleProperties = JobLifecycleMachine.TestCase
TestJobLifecycleProperties.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)
