"""Tests for the dense state-vector simulator and state structures."""

import math

import numpy as np
import pytest

from repro.sim import (
    BinaryValue,
    QuantumState,
    State,
    StateVectorSimulator,
    basis_state_label,
    index_from_bits,
)


class TestGates:
    def test_x_gate(self):
        sim = StateVectorSimulator(2, seed=0)
        sim.apply_gate("x", (1,))
        assert sim.quantum_state().probability(0b10) == pytest.approx(1.0)

    def test_h_creates_superposition(self):
        sim = StateVectorSimulator(1, seed=0)
        sim.apply_gate("h", (0,))
        state = sim.quantum_state()
        assert state.probability(0) == pytest.approx(0.5)
        assert state.probability(1) == pytest.approx(0.5)

    def test_cnot_control_order(self):
        """The first listed qubit is the control."""
        sim = StateVectorSimulator(2, seed=0)
        sim.apply_gate("x", (0,))
        sim.apply_gate("cnot", (0, 1))
        assert sim.quantum_state().probability(0b11) == pytest.approx(1.0)
        sim = StateVectorSimulator(2, seed=0)
        sim.apply_gate("x", (1,))
        sim.apply_gate("cnot", (0, 1))
        assert sim.quantum_state().probability(0b10) == pytest.approx(1.0)

    def test_t_gate_phase(self):
        sim = StateVectorSimulator(1, seed=0)
        sim.apply_gate("x", (0,))
        sim.apply_gate("t", (0,))
        amplitude = sim.quantum_state().amplitudes[1]
        assert amplitude == pytest.approx(np.exp(1j * math.pi / 4))

    def test_toffoli(self):
        sim = StateVectorSimulator(3, seed=0)
        sim.apply_gate("x", (0,))
        sim.apply_gate("x", (1,))
        sim.apply_gate("toffoli", (0, 1, 2))
        assert sim.quantum_state().probability(0b111) == pytest.approx(1.0)

    def test_rz_parameterised(self):
        sim = StateVectorSimulator(1, seed=0)
        sim.apply_gate("x", (0,))
        sim.apply_gate("rz", (0,), (math.pi,))
        assert sim.quantum_state().amplitudes[1] == pytest.approx(-1.0)

    def test_matrix_size_checked(self):
        sim = StateVectorSimulator(2, seed=0)
        with pytest.raises(ValueError):
            sim.apply_matrix(np.eye(2), (0, 1))


class TestMeasurement:
    def test_deterministic_outcomes(self):
        sim = StateVectorSimulator(1, seed=0)
        assert sim.measure(0) == 0
        sim.apply_gate("x", (0,))
        assert sim.measure(0) == 1

    def test_collapse(self):
        sim = StateVectorSimulator(1, seed=2)
        sim.apply_gate("h", (0,))
        first = sim.measure(0)
        for _ in range(3):
            assert sim.measure(0) == first

    def test_statistics(self):
        rng = np.random.default_rng(1)
        ones = 0
        for _ in range(300):
            sim = StateVectorSimulator(1, rng=rng)
            sim.apply_gate("h", (0,))
            ones += sim.measure(0)
        assert 100 < ones < 200

    def test_reset(self):
        sim = StateVectorSimulator(1, seed=4)
        sim.apply_gate("h", (0,))
        sim.reset(0)
        assert sim.probability_of_one(0) == pytest.approx(0.0)

    def test_entangled_measurement_correlations(self):
        sim = StateVectorSimulator(2, seed=7)
        sim.apply_gate("h", (0,))
        sim.apply_gate("cnot", (0, 1))
        assert sim.measure(0) == sim.measure(1)


class TestStateAccess:
    def test_add_qubits(self):
        sim = StateVectorSimulator(1, seed=0)
        sim.apply_gate("x", (0,))
        sim.add_qubits(1)
        state = sim.quantum_state()
        assert state.num_qubits == 2
        assert state.probability(0b01) == pytest.approx(1.0)

    def test_quantum_state_of_product_state(self):
        sim = StateVectorSimulator(3, seed=0)
        sim.apply_gate("x", (1,))
        sim.apply_gate("h", (2,))
        reduced = sim.quantum_state_of([1])
        assert reduced.probability(1) == pytest.approx(1.0)

    def test_quantum_state_of_rejects_entangled(self):
        sim = StateVectorSimulator(2, seed=0)
        sim.apply_gate("h", (0,))
        sim.apply_gate("cnot", (0, 1))
        with pytest.raises(ValueError):
            sim.quantum_state_of([0])

    def test_adder_workload_computes_sum(self):
        """End-to-end: the synthetic ripple-carry adder really adds."""
        from repro.circuits.workloads import cnot_adder_workload

        circuit = cnot_adder_workload(3)
        sim = StateVectorSimulator(8, seed=0)
        results = {}
        for slot in circuit:
            for operation in slot:
                if operation.is_preparation:
                    sim.reset(operation.qubits[0])
                elif operation.is_measurement:
                    results[operation.qubits[0]] = sim.measure(
                        operation.qubits[0]
                    )
                else:
                    sim.apply_gate(
                        operation.name, operation.qubits, operation.params
                    )
        # Inputs loaded by the workload: a = 0b101, b = 0b010.
        total = sum(results[3 + i] << i for i in range(3))
        assert total == (0b101 + 0b010) % 8


class TestQuantumState:
    def test_global_phase_comparison(self):
        a = QuantumState(np.array([1, 0], dtype=complex))
        b = QuantumState(np.exp(1j * 0.7) * np.array([1, 0], dtype=complex))
        assert a.equal_up_to_global_phase(b)
        phase = a.global_phase_relative_to(b)
        assert abs(phase) == pytest.approx(1.0)

    def test_different_states_not_equal(self):
        a = QuantumState(np.array([1, 0], dtype=complex))
        c = QuantumState(np.array([0, 1], dtype=complex))
        assert not a.equal_up_to_global_phase(c)

    def test_nonzero_terms_and_format(self):
        state = QuantumState(
            np.array([1, 0, 0, 1], dtype=complex) / math.sqrt(2)
        )
        terms = state.nonzero_terms()
        assert [index for index, _ in terms] == [0, 3]
        assert "|11>" in state.format_terms()

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError):
            QuantumState(np.zeros(3, dtype=complex))

    def test_bit_helpers(self):
        assert basis_state_label(5, 4) == "0101"
        assert index_from_bits([1, 0, 1]) == 0b101


class TestBinaryState:
    def test_lifecycle(self):
        state = State(2)
        assert state[0] is BinaryValue.UNKNOWN
        state.set_bit(0, 1)
        assert state[0] is BinaryValue.ONE
        state.invalidate(0)
        assert state[0] is BinaryValue.UNKNOWN

    def test_known_bits(self):
        state = State(3)
        state.set_bit(0, 1)
        state.set_bit(2, 0)
        assert state.known_bits() == {0: 1, 2: 0}

    def test_resize(self):
        state = State(1)
        state.set_bit(0, 1)
        state.resize(3)
        assert state.num_qubits == 3
        assert state[2] is BinaryValue.UNKNOWN
        state.resize(1)
        assert state.num_qubits == 1
        assert state[0] is BinaryValue.ONE

    def test_copy_independent(self):
        state = State(1)
        duplicate = state.copy()
        duplicate.set_bit(0, 1)
        assert state[0] is BinaryValue.UNKNOWN
