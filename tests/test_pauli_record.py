"""Unit tests for single-qubit Pauli records (paper section 3.2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.paulis.record import (
    PAULI_GATE_RECORDS,
    PauliRecord,
    record_after_pauli,
)

ALL_RECORDS = list(PauliRecord)


class TestRecordBasics:
    def test_exactly_four_records(self):
        assert len(ALL_RECORDS) == 4

    def test_two_bit_encoding(self):
        assert PauliRecord.I.value == 0
        assert PauliRecord.X.value == 1
        assert PauliRecord.Z.value == 2
        assert PauliRecord.XZ.value == 3

    def test_has_x_bit(self):
        assert not PauliRecord.I.has_x
        assert PauliRecord.X.has_x
        assert not PauliRecord.Z.has_x
        assert PauliRecord.XZ.has_x

    def test_has_z_bit(self):
        assert not PauliRecord.I.has_z
        assert not PauliRecord.X.has_z
        assert PauliRecord.Z.has_z
        assert PauliRecord.XZ.has_z


class TestComposition:
    def test_identity_is_neutral(self):
        for record in ALL_RECORDS:
            assert record.compose(PauliRecord.I) is record
            assert PauliRecord.I.compose(record) is record

    def test_self_composition_cancels(self):
        """Pauli gates are Hermitian: even sequences cancel (Eq. 2.9)."""
        for record in ALL_RECORDS:
            assert record.compose(record) is PauliRecord.I

    def test_composition_is_commutative_up_to_phase(self):
        """Reordering only changes global phase, not the record."""
        for a in ALL_RECORDS:
            for b in ALL_RECORDS:
                assert a.compose(b) is b.compose(a)

    @given(
        st.lists(st.sampled_from(["x", "y", "z", "i"]), max_size=30)
    )
    def test_any_gate_sequence_compresses_to_one_record(self, gates):
        """Working principle: R''_q in {I, X, Z, XZ} always."""
        record = PauliRecord.I
        x_parity = 0
        z_parity = 0
        for gate in gates:
            record = record_after_pauli(record, gate)
            if gate in ("x", "y"):
                x_parity ^= 1
            if gate in ("z", "y"):
                z_parity ^= 1
        assert record.has_x == bool(x_parity)
        assert record.has_z == bool(z_parity)


class TestMeasurementMapping:
    def test_flips_only_with_x_component(self):
        """Table 3.2: only X/XZ invert the measurement result."""
        assert not PauliRecord.I.flips_measurement()
        assert PauliRecord.X.flips_measurement()
        assert not PauliRecord.Z.flips_measurement()
        assert PauliRecord.XZ.flips_measurement()


class TestCliffordMappings:
    def test_hadamard_swaps_x_and_z(self):
        assert PauliRecord.I.after_hadamard() is PauliRecord.I
        assert PauliRecord.X.after_hadamard() is PauliRecord.Z
        assert PauliRecord.Z.after_hadamard() is PauliRecord.X
        assert PauliRecord.XZ.after_hadamard() is PauliRecord.XZ

    def test_hadamard_is_involution(self):
        for record in ALL_RECORDS:
            assert record.after_hadamard().after_hadamard() is record

    def test_phase_gate_table_3_4(self):
        assert PauliRecord.I.after_phase() is PauliRecord.I
        assert PauliRecord.X.after_phase() is PauliRecord.XZ
        assert PauliRecord.Z.after_phase() is PauliRecord.Z
        assert PauliRecord.XZ.after_phase() is PauliRecord.X

    def test_phase_dagger_matches_phase(self):
        for record in ALL_RECORDS:
            assert record.after_phase_dagger() is record.after_phase()

    def test_cnot_x_propagates_to_target(self):
        control, target = PauliRecord.after_cnot(
            PauliRecord.X, PauliRecord.I
        )
        assert control is PauliRecord.X
        assert target is PauliRecord.X

    def test_cnot_z_propagates_to_control(self):
        control, target = PauliRecord.after_cnot(
            PauliRecord.I, PauliRecord.Z
        )
        assert control is PauliRecord.Z
        assert target is PauliRecord.Z

    def test_cnot_is_involution(self):
        for a in ALL_RECORDS:
            for b in ALL_RECORDS:
                once = PauliRecord.after_cnot(a, b)
                twice = PauliRecord.after_cnot(*once)
                assert twice == (a, b)

    def test_cz_symmetry(self):
        """CZ is symmetric under exchanging control and target."""
        for a in ALL_RECORDS:
            for b in ALL_RECORDS:
                c1, t1 = PauliRecord.after_cz(a, b)
                t2, c2 = PauliRecord.after_cz(b, a)
                assert (c1, t1) == (c2, t2)

    def test_swap_exchanges_records(self):
        for a in ALL_RECORDS:
            for b in ALL_RECORDS:
                assert PauliRecord.after_swap(a, b) == (b, a)


class TestGenerators:
    def test_flush_order_is_x_then_z(self):
        assert PauliRecord.XZ.generators() == ("x", "z")
        assert PauliRecord.X.generators() == ("x",)
        assert PauliRecord.Z.generators() == ("z",)
        assert PauliRecord.I.generators() == ()

    def test_pauli_gate_records_cover_y(self):
        """Y contributes both generators (Y = iXZ up to phase)."""
        assert PAULI_GATE_RECORDS["y"] is PauliRecord.XZ

    def test_unknown_gate_rejected(self):
        with pytest.raises(ValueError):
            record_after_pauli(PauliRecord.I, "h")
