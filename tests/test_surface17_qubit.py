"""Tests for the ninja-star run-time properties (Tables 5.2/5.3)."""

import numpy as np
import pytest

from repro.codes.surface17 import (
    DanceMode,
    LogicalState,
    NinjaStarQubit,
    Rotation,
    X_CHECK_MATRIX,
    Z_CHECK_MATRIX,
)


@pytest.fixture
def qubit():
    return NinjaStarQubit(
        list(range(9)), ancilla_qubits=list(range(9, 17))
    )


class TestInitialValues:
    def test_table_5_2_initial_values(self, qubit):
        assert qubit.rotation is Rotation.NORMAL
        assert qubit.dance_mode is DanceMode.Z_ONLY
        assert qubit.state is LogicalState.UNKNOWN

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            NinjaStarQubit(list(range(5)), shared_ancilla=9)
        with pytest.raises(ValueError):
            NinjaStarQubit(list(range(9)))  # neither ancilla option
        with pytest.raises(ValueError):
            NinjaStarQubit(
                list(range(9)),
                ancilla_qubits=list(range(9, 17)),
                shared_ancilla=20,
            )
        with pytest.raises(ValueError):
            NinjaStarQubit(list(range(9)), ancilla_qubits=[9, 10])


class TestPropertyUpdates:
    def test_reset_sets_table_5_3_values(self, qubit):
        qubit.rotation = Rotation.ROTATED
        qubit.on_reset()
        assert qubit.rotation is Rotation.NORMAL
        assert qubit.dance_mode is DanceMode.ALL
        assert qubit.state is LogicalState.ZERO

    def test_logical_x_flips_known_state(self, qubit):
        qubit.on_reset()
        qubit.on_logical_x()
        assert qubit.state is LogicalState.ONE
        qubit.on_logical_x()
        assert qubit.state is LogicalState.ZERO

    def test_logical_x_keeps_unknown(self, qubit):
        qubit.on_logical_x()
        assert qubit.state is LogicalState.UNKNOWN

    def test_logical_z_keeps_state(self, qubit):
        qubit.on_reset()
        qubit.on_logical_z()
        assert qubit.state is LogicalState.ZERO

    def test_hadamard_rotates_and_scrambles(self, qubit):
        qubit.on_reset()
        qubit.on_logical_h()
        assert qubit.rotation is Rotation.ROTATED
        assert qubit.state is LogicalState.UNKNOWN
        qubit.on_logical_h()
        assert qubit.rotation is Rotation.NORMAL

    def test_measurement_updates_dance_and_state(self, qubit):
        qubit.on_reset()
        qubit.on_logical_measurement(1)
        assert qubit.dance_mode is DanceMode.Z_ONLY
        assert qubit.state is LogicalState.ONE


class TestOrientationDependentViews:
    def test_check_matrices_swap_under_rotation(self, qubit):
        assert np.array_equal(qubit.x_check_matrix, X_CHECK_MATRIX)
        assert np.array_equal(qubit.z_check_matrix, Z_CHECK_MATRIX)
        qubit.on_logical_h()
        assert np.array_equal(qubit.x_check_matrix, Z_CHECK_MATRIX)
        assert np.array_equal(qubit.z_check_matrix, X_CHECK_MATRIX)

    def test_logical_supports_swap_under_rotation(self, qubit):
        assert tuple(qubit.x_logical_support) == (2, 4, 6)
        assert tuple(qubit.z_logical_support) == (0, 4, 8)
        qubit.on_logical_h()
        assert tuple(qubit.x_logical_support) == (0, 4, 8)
        assert tuple(qubit.z_logical_support) == (2, 4, 6)

    def test_decoder_follows_orientation(self, qubit):
        normal_decoder = qubit.decoder
        qubit.on_logical_h()
        assert qubit.decoder is not normal_decoder
        qubit.on_logical_h()
        assert qubit.decoder is normal_decoder

    def test_esm_round_honours_dance_mode(self, qubit):
        qubit.dance_mode = DanceMode.Z_ONLY
        esm = qubit.esm_round()
        assert len(esm.x_measurements) == 0
        qubit.dance_mode = DanceMode.ALL
        esm = qubit.esm_round()
        assert len(esm.x_measurements) == 4

    def test_esm_round_serialized_mode(self):
        qubit = NinjaStarQubit(list(range(9)), shared_ancilla=9)
        qubit.dance_mode = DanceMode.ALL
        esm = qubit.esm_round()
        measured = {
            o.qubits[0]
            for o in esm.x_measurements + esm.z_measurements
        }
        assert measured == {9}

    def test_physical_address_lookup(self, qubit):
        assert qubit.physical(4) == 4
        remapped = NinjaStarQubit(
            list(range(20, 29)), shared_ancilla=50
        )
        assert remapped.physical(0) == 20
