"""The whole-program dataflow analyzer (REP100-REP112).

Fixture corpus of known-bad snippets — one per rule — asserting exact
finding codes and locations, the matching known-good variants, the
``# allow-lint:`` suppression contract, and Hypothesis properties
(never crashes, findings stable under formatting changes).
"""

import textwrap

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import dataflow
from repro.analysis.dataflow import (
    OWNERSHIP_CONTRACTS,
    analyze_program,
)


def analyze(tmp_path, **sources):
    """Write ``name -> source`` files and analyze them as one program."""
    paths = []
    for name, source in sorted(sources.items()):
        path = tmp_path / f"{name}.py"
        path.write_text(textwrap.dedent(source))
        paths.append(path)
    return analyze_program(paths, [p.name for p in paths])


def codes(findings, suppressed=False):
    return [
        f.code for f in findings if f.suppressed == suppressed
    ]


# ----------------------------------------------------------------------
# REP100: default-None seed reaching default_rng with an unset caller
# ----------------------------------------------------------------------
REP100_BAD = """
    import numpy as np

    def sample(shots, seed=None):
        rng = np.random.default_rng(seed)
        return rng.random(shots)

    def caller():
        return sample(10)
"""


def test_rep100_unset_caller(tmp_path):
    findings = analyze(tmp_path, mod=REP100_BAD)
    assert codes(findings) == ["REP100"]
    finding = findings[0]
    assert finding.location["path"] == "mod.py"
    assert finding.location["line"] == 5
    assert "caller" not in finding.message or "mod.py:9" in (
        finding.message
    )


def test_rep100_quiet_when_all_callers_seed(tmp_path):
    source = REP100_BAD.replace("sample(10)", "sample(10, seed=7)")
    assert codes(analyze(tmp_path, mod=source)) == []


def test_rep100_quiet_on_ambiguous_name(tmp_path):
    # Two defs share the simple name: call sites cannot be
    # attributed, so the rule must stay quiet rather than guess.
    other = """
        def sample(n, seed=3):
            return seed
    """
    findings = analyze(tmp_path, mod=REP100_BAD, other=other)
    assert codes(findings) == []


def test_rep100_kwargs_assumed_bound(tmp_path):
    source = REP100_BAD.replace("sample(10)", "sample(10, **kw)")
    source = source.replace(
        "def caller():", "def caller(**kw):"
    )
    assert codes(analyze(tmp_path, mod=source)) == []


def test_rep100_cross_module_call_site(tmp_path):
    producer = """
        import numpy as np

        def sample(shots, seed=None):
            return np.random.default_rng(seed).random(shots)
    """
    consumer = """
        from producer import sample

        def run():
            return sample(4)
    """
    findings = analyze(
        tmp_path, producer=producer, consumer=consumer
    )
    assert codes(findings) == ["REP100"]


# ----------------------------------------------------------------------
# REP101: RNG captured into a closure
# ----------------------------------------------------------------------
def test_rep101_closure_capture(tmp_path):
    source = """
        def run(rng):
            def draw():
                return rng.normal()
            return draw
    """
    findings = analyze(tmp_path, mod=source)
    assert codes(findings) == ["REP101"]
    assert findings[0].location["line"] == 3


def test_rep101_lambda_capture(tmp_path):
    source = """
        import numpy as np

        def run(seed):
            rng = np.random.default_rng(seed)
            return sorted([3, 1], key=lambda x: rng.random())
    """
    assert codes(analyze(tmp_path, mod=source)) == ["REP101"]


def test_rep101_quiet_when_threaded(tmp_path):
    source = """
        def run(rng):
            def draw(rng):
                return rng.normal()
            return draw(rng)
    """
    assert codes(analyze(tmp_path, mod=source)) == []


# ----------------------------------------------------------------------
# REP102 / REP103: RNG across the pool boundary / both sides
# ----------------------------------------------------------------------
def test_rep102_submit_ships_rng(tmp_path):
    source = """
        def launch(pool, rng, work):
            return pool.submit(work, rng)
    """
    findings = analyze(tmp_path, mod=source)
    assert codes(findings) == ["REP102"]


def test_rep102_initargs(tmp_path):
    source = """
        from concurrent.futures import ProcessPoolExecutor

        def launch(rng, setup):
            return ProcessPoolExecutor(
                max_workers=2, initializer=setup, initargs=(rng,)
            )
    """
    assert codes(analyze(tmp_path, mod=source)) == ["REP102"]


def test_rep103_both_sides(tmp_path):
    source = """
        def launch(pool, rng, work):
            local = rng.normal()
            handle = pool.submit(work, rng)
            return local, handle
    """
    found = codes(analyze(tmp_path, mod=source))
    assert found == ["REP103", "REP102"] or sorted(found) == [
        "REP102",
        "REP103",
    ]


def test_rep102_quiet_for_derived_seeds(tmp_path):
    source = """
        def launch(pool, rng, work):
            children = rng.spawn(4)
            return [pool.submit(work, c) for c in children]
    """
    assert codes(analyze(tmp_path, mod=source)) == []


# ----------------------------------------------------------------------
# REP104: nondeterministic seed derivation
# ----------------------------------------------------------------------
def test_rep104_pid_seed(tmp_path):
    source = """
        import os

        def make():
            seed_value = os.getpid()
            return seed_value
    """
    findings = analyze(tmp_path, mod=source)
    assert codes(findings) == ["REP104"]
    assert findings[0].location["line"] == 5


def test_rep104_wall_clock_inside_default_rng(tmp_path):
    source = """
        import time
        import numpy as np

        def make():
            return np.random.default_rng(int(time.time()))
    """
    assert codes(analyze(tmp_path, mod=source)) == ["REP104"]


def test_rep104_quiet_for_sha_derivation(tmp_path):
    source = """
        import hashlib

        def make(job_id):
            digest = hashlib.sha256(job_id.encode()).digest()
            seed_value = int.from_bytes(digest[:8], "big")
            return seed_value
    """
    assert codes(analyze(tmp_path, mod=source)) == []


# ----------------------------------------------------------------------
# REP110: module-level mutable without an ownership contract
# ----------------------------------------------------------------------
REP110_BAD = """
    _CACHE = {}

    def put(key, value):
        _CACHE[key] = value
"""


def test_rep110_uncontracted_cache(tmp_path):
    findings = analyze(tmp_path, mod=REP110_BAD)
    assert codes(findings) == ["REP110"]
    finding = findings[0]
    assert finding.location["line"] == 2  # the declaration
    assert "mod.py:5" in finding.location["mutation"]


def test_rep110_contract_clears_it(tmp_path):
    OWNERSHIP_CONTRACTS["mod:_CACHE"] = "test contract"
    try:
        assert codes(analyze(tmp_path, mod=REP110_BAD)) == []
    finally:
        del OWNERSHIP_CONTRACTS["mod:_CACHE"]


def test_rep110_method_mutation(tmp_path):
    source = """
        _SEEN = set()

        def note(key):
            _SEEN.add(key)
    """
    assert codes(analyze(tmp_path, mod=source)) == ["REP110"]


def test_rep110_local_shadow_is_quiet(tmp_path):
    source = """
        _CACHE = {}

        def put(key, value):
            _CACHE = {}
            _CACHE[key] = value
            return _CACHE
    """
    assert codes(analyze(tmp_path, mod=source)) == []


def test_rep110_cross_module_mutation(tmp_path):
    owner = """
        TABLE = {}
    """
    writer = """
        import owner

        def put(key, value):
            owner.TABLE[key] = value
    """
    findings = analyze(tmp_path, owner=owner, writer=writer)
    assert codes(findings) == ["REP110"]
    assert findings[0].location["path"] == "owner.py"


def test_every_registered_contract_is_a_real_mutable():
    # Contracts must not go stale: each key's module:NAME must still
    # exist as a module-level mutable in the package sources.
    from pathlib import Path

    import repro

    root = Path(repro.__file__).resolve().parent
    paths = sorted(root.rglob("*.py"))
    program = dataflow.build_program(
        paths, [str(p) for p in paths]
    )
    for key in OWNERSHIP_CONTRACTS:
        assert key in program.module_mutables, (
            f"stale ownership contract {key!r}: no such "
            f"module-level mutable"
        )


# ----------------------------------------------------------------------
# REP111 / REP112: atomic-publish idiom
# ----------------------------------------------------------------------
def test_rep111_truncating_checkpoint_write(tmp_path):
    source = """
        def write_checkpoint(path, payload):
            with open(path, "w") as handle:
                handle.write(payload)
    """
    findings = analyze(tmp_path, mod=source)
    assert codes(findings) == ["REP111"]


def test_rep111_quiet_with_replace(tmp_path):
    source = """
        import os

        def write_checkpoint(path, payload):
            with open(path + ".tmp", "w") as handle:
                handle.write(payload)
            os.replace(path + ".tmp", path)
    """
    assert codes(analyze(tmp_path, mod=source)) == []


def test_rep111_quiet_outside_persistence_scope(tmp_path):
    source = """
        def render(path, payload):
            with open(path, "w") as handle:
                handle.write(payload)
    """
    assert codes(analyze(tmp_path, mod=source)) == []


def test_rep112_tmp_path_never_published(tmp_path):
    source = """
        def emit(path, data):
            staged = path + ".tmp"
            with open(staged, "a") as handle:
                handle.write(data)
    """
    findings = analyze(tmp_path, mod=source)
    assert codes(findings) == ["REP112"]
    assert findings[0].location["line"] == 3


def test_rep112_quiet_with_replace(tmp_path):
    source = """
        import os

        def emit(path, data):
            staged = path + ".tmp"
            with open(staged, "a") as handle:
                handle.write(data)
            os.replace(staged, path)
    """
    assert codes(analyze(tmp_path, mod=source)) == []


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
def test_allow_lint_with_reason_suppresses(tmp_path):
    source = """
        _CACHE = {}  # allow-lint: REP110 process cache, documented

        def put(key, value):
            _CACHE[key] = value
    """
    findings = analyze(tmp_path, mod=source)
    assert codes(findings) == []
    assert codes(findings, suppressed=True) == ["REP110"]
    assert findings[0].suppression_reason == (
        "process cache, documented"
    )


def test_allow_lint_without_reason_does_not_suppress(tmp_path):
    source = """
        _CACHE = {}  # allow-lint: REP110

        def put(key, value):
            _CACHE[key] = value
    """
    assert codes(analyze(tmp_path, mod=source)) == ["REP110"]


def test_allow_lint_wrong_code_does_not_suppress(tmp_path):
    source = """
        _CACHE = {}  # allow-lint: REP002 wrong rule cited

        def put(key, value):
            _CACHE[key] = value
    """
    assert codes(analyze(tmp_path, mod=source)) == ["REP110"]


# ----------------------------------------------------------------------
# lint-code integration
# ----------------------------------------------------------------------
def test_lint_paths_runs_program_pass_on_directories(tmp_path):
    from repro.tools import lint

    (tmp_path / "mod.py").write_text(textwrap.dedent(REP110_BAD))
    findings = lint.lint_paths(tmp_path)
    assert "REP110" in [f.code for f in findings]


def test_lint_paths_single_file_skips_program_pass(tmp_path):
    from repro.tools import lint

    path = tmp_path / "mod.py"
    path.write_text(textwrap.dedent(REP110_BAD))
    findings = lint.lint_paths(path)
    assert [f.code for f in findings] == []


def test_src_repro_has_zero_unsuppressed_program_findings():
    from repro.tools import lint

    findings = [
        f
        for f in lint.lint_paths()
        if f.code.startswith("REP1")
    ]
    offending = lint.unsuppressed(findings)
    assert offending == [], [str(f) for f in offending]
    for finding in findings:
        if finding.suppressed:
            assert finding.suppression_reason


# ----------------------------------------------------------------------
# Hypothesis: total and formatting-stable
# ----------------------------------------------------------------------
_SNIPPETS = [
    REP100_BAD,
    REP110_BAD,
    """
    def run(rng):
        def draw():
            return rng.normal()
        return draw
    """,
    """
    import os

    def make():
        seed_value = os.getpid()
        return seed_value
    """,
    """
    def write_checkpoint(path, payload):
        with open(path, "w") as handle:
            handle.write(payload)
    """,
    """
    def launch(pool, rng, work):
        local = rng.normal()
        return pool.submit(work, rng)
    """,
    """
    def clean(values):
        return sorted(values)
    """,
]


@st.composite
def generated_module(draw):
    """A syntactically valid module assembled from template parts."""
    parts = draw(
        st.lists(st.sampled_from(_SNIPPETS), min_size=1, max_size=4)
    )
    rename = draw(st.integers(min_value=0, max_value=999))
    out = []
    for index, part in enumerate(parts):
        body = textwrap.dedent(part)
        # Uniquify top-level names so redefinition is syntactically
        # fine but attribution stays interesting.
        body = body.replace("def ", f"def g{rename}_{index}_", 1)
        out.append(body)
    return "\n".join(out)


@settings(max_examples=25, deadline=None)
@given(source=generated_module())
def test_analyzer_never_crashes(tmp_path_factory, source):
    tmp = tmp_path_factory.mktemp("hyp")
    path = tmp / "mod.py"
    path.write_text(source)
    findings = analyze_program([path], ["mod.py"])
    for finding in findings:
        assert finding.code in dataflow.F.FINDING_CODES


@settings(max_examples=25, deadline=None)
@given(
    snippet=st.sampled_from(_SNIPPETS),
    pad=st.integers(min_value=0, max_value=5),
    indent_unit=st.sampled_from([4, 8]),
)
def test_findings_stable_under_formatting(
    tmp_path_factory, snippet, pad, indent_unit
):
    tmp = tmp_path_factory.mktemp("fmt")
    base = textwrap.dedent(snippet).strip() + "\n"

    def run(source):
        path = tmp / "mod.py"
        path.write_text(source)
        return [
            f.code for f in analyze_program([path], ["mod.py"])
        ]

    reference = run(base)
    # Trailing blank lines, trailing spaces and a wider (but
    # consistent) indent unit must not change what is found.
    reindented = base.replace("    ", " " * indent_unit)
    padded = base + "\n" * pad
    spaced = "\n".join(
        line + "  " if line.strip() else line
        for line in base.splitlines()
    ) + "\n"
    assert run(reindented) == reference
    assert run(padded) == reference
    assert run(spaced) == reference
