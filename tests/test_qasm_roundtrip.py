"""QASM round-trip tests: parse → emit → parse identity.

The serialisation contract of :mod:`repro.circuits.qasm` is that the
*text form* is a fixed point: ``dumps(loads(dumps(c)))`` must equal
``dumps(c)`` for every circuit, in both the flat and the
parallel-blocks dialect.  (Slot packing may legitimately differ after
a flat-form round trip, so textual identity — which pins the full
operation sequence, qubits, parameters and error markers — is the
invariant, not slot-level equality.)
"""

import numpy as np
import pytest

from repro.circuits import qasm
from repro.circuits.circuit import Circuit
from repro.circuits.operation import Operation
from repro.circuits.random_circuits import random_circuit
from repro.codes.surface17.esm import parallel_esm


def build_kitchen_sink() -> Circuit:
    """A circuit using every serialisation feature at once."""
    circuit = Circuit("kitchen-sink")
    circuit.append(Operation("h", (0,)))
    circuit.append(Operation("cnot", (0, 1)))
    circuit.append(Operation("rz", (2,), (0.785398,)))
    circuit.append(Operation("x", (1,), is_error=True))
    circuit.append(Operation("prep_z", (3,)))
    circuit.append(Operation("measure", (1,)))
    circuit.append(Operation("measure", (2,)))
    return circuit


def assert_text_fixed_point(circuit, parallel_blocks=False):
    text = qasm.dumps(circuit, parallel_blocks=parallel_blocks)
    reparsed = qasm.loads(text, name=circuit.name)
    assert (
        qasm.dumps(reparsed, parallel_blocks=parallel_blocks) == text
    )
    return reparsed


class TestFlatRoundTrip:
    def test_kitchen_sink_text_identity(self):
        assert_text_fixed_point(build_kitchen_sink())

    def test_operation_sequence_preserved(self):
        circuit = build_kitchen_sink()
        reparsed = qasm.loads(qasm.dumps(circuit))
        original = list(circuit.operations())
        restored = list(reparsed.operations())
        assert len(original) == len(restored)
        for op_a, op_b in zip(original, restored):
            assert op_a.name == op_b.name
            assert op_a.qubits == op_b.qubits
            assert op_a.params == pytest.approx(op_b.params)
            assert op_a.is_error == op_b.is_error

    def test_error_marker_round_trips(self):
        circuit = Circuit()
        circuit.append(Operation("z", (0,), is_error=True))
        circuit.append(Operation("z", (1,)))
        restored = list(qasm.loads(qasm.dumps(circuit)).operations())
        assert [op.is_error for op in restored] == [True, False]

    def test_params_round_trip_exactly_at_9_digits(self):
        circuit = Circuit()
        circuit.append(Operation("rz", (0,), (1.23456789e-4,)))
        circuit.append(Operation("rz", (1,), (-2.5,)))
        restored = list(qasm.loads(qasm.dumps(circuit)).operations())
        assert restored[0].params[0] == pytest.approx(
            1.23456789e-4, rel=1e-8
        )
        assert restored[1].params[0] == -2.5

    def test_name_comment_ignored_on_parse(self):
        circuit = Circuit("named")
        circuit.append(Operation("h", (0,)))
        text = qasm.dumps(circuit)
        assert text.startswith("# circuit: named")
        assert qasm.loads(text).num_operations() == 1


class TestParallelBlockRoundTrip:
    def test_esm_circuit_text_identity(self):
        esm = parallel_esm(list(range(17)), name="esm")
        assert_text_fixed_point(esm.circuit, parallel_blocks=True)

    def test_parallel_block_is_one_slot(self):
        circuit = Circuit()
        slot = circuit.new_slot()
        slot.add(Operation("h", (0,)))
        slot.add(Operation("h", (1,)))
        slot.add(Operation("h", (2,)))
        text = qasm.dumps(circuit, parallel_blocks=True)
        assert text.count("{") == 1
        reparsed = qasm.loads(text)
        slots = [len(s) for s in reparsed if len(s)]
        assert slots == [3]

    def test_flat_and_block_dialects_same_operations(self):
        esm = parallel_esm(list(range(17)), name="esm")
        flat = qasm.loads(qasm.dumps(esm.circuit))
        block = qasm.loads(
            qasm.dumps(esm.circuit, parallel_blocks=True)
        )
        describe = lambda c: [
            (op.name, op.qubits, op.params, op.is_error)
            for op in c.operations()
        ]
        assert describe(flat) == describe(block)


class TestRandomCircuits:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("parallel_blocks", [False, True])
    def test_random_circuit_fixed_point(self, seed, parallel_blocks):
        rng = np.random.default_rng(7_000 + seed)
        circuit = random_circuit(
            num_qubits=int(rng.integers(2, 6)),
            num_gates=int(rng.integers(5, 20)),
            rng=rng,
        )
        assert_text_fixed_point(
            circuit, parallel_blocks=parallel_blocks
        )


class TestParseErrors:
    def test_unparseable_line_raises(self):
        with pytest.raises(ValueError, match="cannot parse"):
            qasm.loads("h q0\n!!nonsense!!\n")

    def test_blank_lines_and_comments_skipped(self):
        text = "\n# a comment\n\nh q0\n  # another\nmeasure q0\n"
        assert qasm.loads(text).num_operations() == 2
