"""Tests for the determinism linter (repro.tools.lint)."""

import subprocess
import sys
import textwrap

from repro.analysis import findings as F
from repro.tools.lint import (
    default_root,
    iter_source_files,
    lint_paths,
    lint_source,
    parse_suppressions,
    unsuppressed,
)


def lint(snippet: str, path: str = "src/repro/example.py", **kwargs):
    return lint_source(textwrap.dedent(snippet), path, **kwargs)


def codes(findings, include_suppressed=True):
    return [
        f.code
        for f in findings
        if include_suppressed or not f.suppressed
    ]


# ----------------------------------------------------------------------
# REP001: legacy global-state RNG
# ----------------------------------------------------------------------
def test_rep001_numpy_legacy_and_stdlib_random():
    findings = lint(
        """
        import random
        import numpy as np

        a = np.random.rand(3)
        b = np.random.seed(0)
        c = random.random()
        d = random.shuffle([1, 2])
        """
    )
    assert codes(findings) == [F.REP_LEGACY_RANDOM] * 4


def test_rep001_not_triggered_by_generator_api():
    findings = lint(
        """
        import numpy as np

        rng = np.random.default_rng(7)
        x = rng.random()
        bits = np.random.PCG64(1)
        seq = np.random.SeedSequence(5)
        """
    )
    assert codes(findings) == []


# ----------------------------------------------------------------------
# REP002: unseeded default_rng
# ----------------------------------------------------------------------
def test_rep002_unseeded_default_rng():
    findings = lint(
        """
        import numpy as np
        from numpy.random import default_rng

        a = np.random.default_rng()
        b = default_rng()
        """
    )
    assert codes(findings) == [F.REP_UNSEEDED_RNG] * 2


def test_rep002_seeded_default_rng_is_clean():
    findings = lint(
        """
        import numpy as np

        a = np.random.default_rng(0)
        b = np.random.default_rng(seed=3)
        """
    )
    assert codes(findings) == []


# ----------------------------------------------------------------------
# REP003: wall clock
# ----------------------------------------------------------------------
def test_rep003_wall_clock_calls():
    findings = lint(
        """
        import time
        import datetime

        a = time.time()
        b = datetime.datetime.now()
        """
    )
    assert F.REP_WALL_CLOCK in codes(findings)
    assert len(
        [c for c in codes(findings) if c == F.REP_WALL_CLOCK]
    ) >= 1


def test_rep003_perf_counter_is_clean():
    findings = lint(
        """
        import time

        start = time.perf_counter()
        elapsed = time.perf_counter() - start
        """
    )
    assert codes(findings) == []


# ----------------------------------------------------------------------
# REP004: unordered serialization
# ----------------------------------------------------------------------
def test_rep004_json_dumps_without_sort_keys():
    findings = lint(
        """
        import json

        a = json.dumps({"b": 1})
        b = json.dumps({"b": 1}, sort_keys=False)
        """
    )
    assert codes(findings) == [F.REP_UNORDERED_SERIALIZATION] * 2


def test_rep004_json_dumps_with_sort_keys_is_clean():
    findings = lint(
        """
        import json

        a = json.dumps({"b": 1}, sort_keys=True)
        """
    )
    assert codes(findings) == []


def test_rep004_set_iteration_in_serialization_function():
    findings = lint(
        """
        def to_json_dict(values):
            out = []
            for item in set(values):
                out.append(item)
            return out

        def compute(values):
            for item in set(values):
                pass
        """
    )
    assert codes(findings) == [F.REP_UNORDERED_SERIALIZATION]


# ----------------------------------------------------------------------
# REP005: telemetry fast-path bypass
# ----------------------------------------------------------------------
def test_rep005_direct_telemetry_active_chain():
    findings = lint(
        """
        from repro import telemetry

        def record():
            telemetry.ACTIVE.count("a", "b")
        """
    )
    assert F.REP_TELEMETRY_BYPASS in codes(findings)


def test_rep005_bound_local_pattern_is_clean():
    findings = lint(
        """
        from repro import telemetry

        def record():
            t = telemetry.ACTIVE
            if t is not None:
                t.count("a", "b")
        """
    )
    assert codes(findings) == []


def test_rep005_skipped_inside_telemetry_package():
    findings = lint(
        """
        def emit():
            telemetry.ACTIVE.count("a", "b")
        """,
        path="src/repro/telemetry/collector.py",
        in_telemetry_package=True,
    )
    assert codes(findings) == []


# ----------------------------------------------------------------------
# REP006: deprecated aliases
# ----------------------------------------------------------------------
def test_rep006_deprecated_alias_load():
    findings = lint(
        """
        from repro.experiments.results import LerResult

        value = LerResult
        """
    )
    assert F.REP_DEPRECATED_ALIAS in codes(findings)


def test_rep006_assignment_target_is_not_a_use():
    findings = lint(
        """
        LerResult = object()
        """
    )
    assert codes(findings) == []


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
def test_suppression_same_line_with_reason():
    findings = lint(
        """
        import numpy as np

        rng = np.random.default_rng()  # allow-lint: REP002 entropy API
        """
    )
    assert len(findings) == 1
    assert findings[0].suppressed
    assert findings[0].suppression_reason == "entropy API"
    assert unsuppressed(findings) == []


def test_suppression_comment_line_above_forwards():
    findings = lint(
        """
        import numpy as np

        # allow-lint: REP002 documented entropy fallback
        rng = np.random.default_rng()
        """
    )
    assert [f.suppressed for f in findings] == [True]


def test_suppression_without_reason_does_not_suppress():
    findings = lint(
        """
        import numpy as np

        rng = np.random.default_rng()  # allow-lint: REP002
        """
    )
    assert [f.suppressed for f in findings] == [False]
    assert unsuppressed(findings) == findings


def test_suppression_wrong_code_does_not_suppress():
    findings = lint(
        """
        import numpy as np

        rng = np.random.default_rng()  # allow-lint: REP001 nope
        """
    )
    assert [f.suppressed for f in findings] == [False]


def test_suppression_multiple_codes():
    source = textwrap.dedent(
        """
        # allow-lint: REP001,REP003 test fixture
        pass
        """
    )
    suppressions = parse_suppressions(source)
    assert suppressions[2] == (("REP001", "REP003"), "test fixture")
    # Comment-only line forwards to the statement below it.
    assert suppressions[3] == (("REP001", "REP003"), "test fixture")


# ----------------------------------------------------------------------
# Whole-tree gate: the package must lint clean.
# ----------------------------------------------------------------------
def test_src_repro_lints_clean():
    """The acceptance criterion: zero unsuppressed findings in-tree."""
    findings = lint_paths()
    offending = unsuppressed(findings)
    assert offending == [], [str(f) for f in offending]
    # Every suppression in-tree carries a reason.
    assert all(
        f.suppression_reason for f in findings if f.suppressed
    )


def test_default_root_is_the_package_tree():
    root = default_root()
    assert root.name == "repro"
    files = iter_source_files(root)
    assert any(p.name == "cli.py" for p in files)
    assert files == sorted(files)


def test_lint_module_cli_entry_point():
    result = subprocess.run(
        [sys.executable, "-m", "repro.tools.lint"],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        cwd=default_root().parent.parent,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "0 unsuppressed" in result.stdout


def test_findings_are_sorted_and_json_safe():
    import json

    findings = lint(
        """
        import json as j
        import json
        import numpy as np

        b = np.random.rand()
        a = json.dumps({})
        """
    )
    lines = [f.location["line"] for f in findings]
    assert lines == sorted(lines)
    for finding in findings:
        json.dumps(finding.to_json_dict(), sort_keys=True)
