"""Tests for the Pauli frame, the arbiter dispatch and its statistics."""

import pytest

from repro.circuits import Circuit, op
from repro.paulis import PauliRecord
from repro.pauliframe import PauliFrame, PauliFrameUnit, format_frame


class TestPauliFrame:
    def test_initial_records_are_identity(self):
        frame = PauliFrame(3)
        assert frame.is_clean()
        assert frame[0] is PauliRecord.I

    def test_reset_clears_record(self):
        frame = PauliFrame(1)
        frame.track_pauli("x", 0)
        frame.on_reset(0)
        assert frame[0] is PauliRecord.I

    def test_measurement_mapping(self):
        frame = PauliFrame(1)
        assert frame.map_measurement(0, 1) == 1
        frame.track_pauli("x", 0)
        assert frame.map_measurement(0, 1) == 0
        frame.track_pauli("z", 0)  # XZ still flips
        assert frame.map_measurement(0, 0) == 1

    def test_pauli_tracking_example_figures_3_6_and_3_7(self):
        """Reproduce the worked example of section 3.4."""
        frame = PauliFrame(9)
        # Fig 3.6: X on D2, Z on D4.
        frame.track_pauli("x", 2)
        frame.track_pauli("z", 4)
        assert frame[2] is PauliRecord.X
        assert frame[4] is PauliRecord.Z
        # Fig 3.7: a combined XZ error on D4: X cancels, Z remains...
        frame.track_pauli("x", 4)
        frame.track_pauli("z", 4)
        assert frame[4] is PauliRecord.X  # Z+XZ -> X (two Zs cancel)

    def test_hadamard_mapping_example_figure_3_8(self):
        frame = PauliFrame(9)
        frame.track_pauli("x", 2)
        frame.track_pauli("x", 4)
        for qubit in range(9):
            frame.map_single_clifford("h", qubit)
        assert frame[2] is PauliRecord.Z
        assert frame[4] is PauliRecord.Z
        assert frame.nontrivial() == {
            2: PauliRecord.Z,
            4: PauliRecord.Z,
        }

    def test_cnot_mapping(self):
        frame = PauliFrame(2)
        frame.track_pauli("x", 0)
        frame.map_two_qubit_clifford("cnot", 0, 1)
        assert frame[0] is PauliRecord.X
        assert frame[1] is PauliRecord.X

    def test_flush_returns_generators_and_clears(self):
        frame = PauliFrame(2)
        frame.track_pauli("x", 0)
        frame.track_pauli("z", 0)
        frame.track_pauli("z", 1)
        pending = frame.flush([0, 1])
        assert pending == [("x", 0), ("z", 0), ("z", 1)]
        assert frame.is_clean()

    def test_resize(self):
        frame = PauliFrame(1)
        frame.track_pauli("x", 0)
        frame.resize(3)
        assert frame.num_qubits == 3
        assert frame[0] is PauliRecord.X
        assert frame[2] is PauliRecord.I
        frame.resize(1)
        assert frame.num_qubits == 1

    def test_supports(self):
        frame = PauliFrame(1)
        assert frame.supports("h")
        assert frame.supports("cnot")
        assert not frame.supports("t")

    def test_format_frame_lists_records(self):
        frame = PauliFrame(2)
        frame.track_pauli("x", 1)
        text = format_frame(frame)
        assert "0: I" in text and "1: X" in text


class TestArbiterDispatch:
    """Table 3.1 / Fig 3.12 behaviour of the Pauli Frame Unit."""

    def test_pauli_gates_are_absorbed(self):
        unit = PauliFrameUnit(2)
        circuit = Circuit()
        circuit.add("x", 0)
        circuit.add("y", 1)
        processed = unit.process_circuit(circuit)
        assert processed.circuit.num_operations() == 0
        assert unit.statistics.pauli_gates_filtered == 2
        assert unit.frame[0] is PauliRecord.X
        assert unit.frame[1] is PauliRecord.XZ

    def test_empty_slots_are_deleted(self):
        unit = PauliFrameUnit(2)
        circuit = Circuit()
        circuit.add("x", 0)
        circuit.barrier()
        circuit.add("h", 0)
        processed = unit.process_circuit(circuit)
        assert processed.circuit.num_slots() == 1
        assert unit.statistics.slots_saved == 1

    def test_clifford_gates_forwarded_and_mapped(self):
        unit = PauliFrameUnit(1)
        circuit = Circuit()
        circuit.add("x", 0)
        circuit.add("h", 0)
        processed = unit.process_circuit(circuit)
        names = [o.name for o in processed.circuit.operations()]
        assert names == ["h"]
        assert unit.frame[0] is PauliRecord.Z  # H maps X -> Z

    def test_reset_forwarded_and_record_cleared(self):
        unit = PauliFrameUnit(1)
        unit.frame.track_pauli("x", 0)
        circuit = Circuit()
        circuit.add("prep_z", 0)
        processed = unit.process_circuit(circuit)
        assert [o.name for o in processed.circuit.operations()] == [
            "prep_z"
        ]
        assert unit.frame.is_clean()

    def test_measurement_flip_recorded(self):
        unit = PauliFrameUnit(1)
        circuit = Circuit()
        circuit.add("x", 0)
        measure = circuit.add("measure", 0)
        processed = unit.process_circuit(circuit)
        assert processed.measurement_flips[measure.uid] is True
        assert unit.statistics.measurements_inverted == 1

    def test_non_clifford_flushes_records_first(self):
        unit = PauliFrameUnit(1)
        circuit = Circuit()
        circuit.add("x", 0)
        circuit.add("z", 0)
        circuit.add("t", 0)
        processed = unit.process_circuit(circuit)
        names = [o.name for o in processed.circuit.operations()]
        assert names == ["x", "z", "t"]
        assert unit.frame.is_clean()
        assert unit.statistics.flush_events == 1
        assert unit.statistics.flush_gates_emitted == 2

    def test_flush_gates_precede_gate_in_separate_slots(self):
        unit = PauliFrameUnit(1)
        circuit = Circuit()
        circuit.add("y", 0)
        circuit.add("t", 0)
        processed = unit.process_circuit(circuit)
        slots = processed.circuit.slots
        assert len(slots) == 3  # x | z | t (per-qubit order kept)
        assert [o.name for o in slots[0]] == ["x"]
        assert [o.name for o in slots[1]] == ["z"]
        assert [o.name for o in slots[2]] == ["t"]

    def test_error_operations_pass_untouched(self):
        unit = PauliFrameUnit(1)
        circuit = Circuit()
        circuit.append(op("x", 0, is_error=True))
        processed = unit.process_circuit(circuit)
        forwarded = list(processed.circuit.operations())
        assert len(forwarded) == 1 and forwarded[0].is_error
        # The frame must NOT track physical noise.
        assert unit.frame.is_clean()
        assert unit.statistics.operations_in == 0

    def test_statistics_fractions(self):
        unit = PauliFrameUnit(1)
        circuit = Circuit()
        circuit.add("x", 0)
        circuit.barrier()
        circuit.add("h", 0)
        unit.process_circuit(circuit)
        stats = unit.statistics
        assert stats.saved_operations_fraction == pytest.approx(0.5)
        assert stats.saved_slots_fraction == pytest.approx(0.5)

    def test_statistics_merge(self):
        unit = PauliFrameUnit(1)
        circuit = Circuit()
        circuit.add("x", 0)
        unit.process_circuit(circuit)
        merged = unit.statistics.merged_with(unit.statistics)
        assert merged.pauli_gates_filtered == 2

    def test_flush_frame_circuit(self):
        unit = PauliFrameUnit(2)
        unit.frame.track_pauli("y", 0)
        unit.frame.track_pauli("z", 1)
        circuit = unit.flush_frame_circuit()
        names = sorted(
            (o.name, o.qubits[0]) for o in circuit.operations()
        )
        assert names == [("x", 0), ("z", 0), ("z", 1)]
        assert unit.frame.is_clean()

    def test_reset_statistics_keeps_frame(self):
        unit = PauliFrameUnit(1)
        circuit = Circuit()
        circuit.add("x", 0)
        unit.process_circuit(circuit)
        unit.reset_statistics()
        assert unit.statistics.pauli_gates_filtered == 0
        assert unit.frame[0] is PauliRecord.X
