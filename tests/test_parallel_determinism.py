"""Determinism regression tests for the shot-sharded parallel runner.

The engine's contract: shard records are a pure function of the sweep
parameters — the same seed yields bit-identical per-shard records and
aggregate LER whether the schedule runs inline (``workers=1``), on a
4-process pool, or resumed from a half-written checkpoint.  These
tests pin that contract exactly (no statistics, pure equality).
"""

import json
import os

import pytest

from repro.cli import main as cli_main
from repro.experiments.parallel import (
    ArmAggregator,
    ParallelConfig,
    ShardRecord,
    load_checkpoint,
    plan_shards,
    run_parallel_sweep,
    run_shard,
)

PER_VALUES = [8e-3]
SHOTS = 6
SHARD_SHOTS = 2
WINDOWS = 6
SEED = 20170618


def committed_records(report):
    """Every committed shard record, serialised, in deterministic order."""
    return [
        record.to_json()
        for arm_key in sorted(report.arms)
        for record in report.arms[arm_key].committed
    ]


def run_sweep(**overrides):
    config_kwargs = {
        "workers": overrides.pop("workers", 1),
        "shard_shots": overrides.pop("shard_shots", SHARD_SHOTS),
        "checkpoint": overrides.pop("checkpoint", None),
        "resume": overrides.pop("resume", False),
        "target_ci": overrides.pop("target_ci", None),
    }
    kwargs = {
        "per_values": PER_VALUES,
        "shots": SHOTS,
        "windows": WINDOWS,
        "seed": SEED,
        "config": ParallelConfig(**config_kwargs),
    }
    kwargs.update(overrides)
    return run_parallel_sweep(**kwargs)


class TestWorkerCountInvariance:
    def test_workers_1_vs_4_bit_identical(self):
        serial = run_sweep(workers=1)
        pooled = run_sweep(workers=4)
        assert committed_records(serial) == committed_records(pooled)
        assert serial.sweep.series(False) == pooled.sweep.series(False)
        assert serial.sweep.series(True) == pooled.sweep.series(True)
        for arm_key in serial.arms:
            a, b = serial.arms[arm_key], pooled.arms[arm_key]
            assert (a.errors, a.windows) == (b.errors, b.windows)

    def test_shard_execution_is_pure(self):
        """The same spec always yields the same record."""
        spec = plan_shards(
            PER_VALUES, "x", SHOTS, SHARD_SHOTS, WINDOWS, SEED
        )[0]
        assert run_shard(spec).to_json() == run_shard(spec).to_json()

    def test_loop_mode_shards_deterministic(self):
        specs = plan_shards(
            PER_VALUES,
            "x",
            2,
            1,
            None,
            SEED,
            max_logical_errors=2,
            max_windows=60,
        )
        for spec in specs[:2]:
            assert spec.mode == "loop"
            assert run_shard(spec).to_json() == run_shard(spec).to_json()

    def test_early_stop_frontier_is_worker_invariant(self):
        """A generous CI target stops both runs at the same frontier."""
        serial = run_sweep(workers=1, target_ci=0.2)
        pooled = run_sweep(workers=4, target_ci=0.2)
        assert committed_records(serial) == committed_records(pooled)
        assert serial.committed_shards < serial.total_shards
        assert serial.sweep.series(True) == pooled.sweep.series(True)


class TestCheckpointResume:
    def test_resume_reproduces_uninterrupted_run(self, tmp_path):
        checkpoint = str(tmp_path / "sweep.jsonl")
        full = run_sweep(checkpoint=checkpoint)
        lines = open(checkpoint).read().strip().split("\n")
        assert len(lines) == 1 + full.total_shards  # header + shards

        # Simulate a kill after two shards, mid-write of the third.
        with open(checkpoint, "w") as handle:
            handle.write("\n".join(lines[:3]) + "\n")
            handle.write('{"kind": "shard", "point_index": 0, "sho')
        resumed = run_sweep(checkpoint=checkpoint, resume=True)
        assert resumed.resumed_shards == 2
        assert resumed.executed_shards == full.total_shards - 2
        assert committed_records(resumed) == committed_records(full)
        assert resumed.sweep.series(False) == full.sweep.series(False)
        assert resumed.sweep.series(True) == full.sweep.series(True)

        # The repaired checkpoint again holds the complete record set.
        _header, records = load_checkpoint(checkpoint)
        assert len(records) == full.total_shards

    def test_resume_with_pool_matches_serial(self, tmp_path):
        checkpoint = str(tmp_path / "sweep.jsonl")
        full = run_sweep(checkpoint=checkpoint)
        lines = open(checkpoint).read().strip().split("\n")
        with open(checkpoint, "w") as handle:
            handle.write("\n".join(lines[:4]) + "\n")
        resumed = run_sweep(
            checkpoint=checkpoint, resume=True, workers=4
        )
        assert committed_records(resumed) == committed_records(full)

    def test_resume_rejects_mismatched_configuration(self, tmp_path):
        checkpoint = str(tmp_path / "sweep.jsonl")
        run_sweep(checkpoint=checkpoint)
        with pytest.raises(ValueError, match="different sweep"):
            run_sweep(
                checkpoint=checkpoint, resume=True, seed=SEED + 1
            )

    def test_fresh_run_overwrites_stale_checkpoint(self, tmp_path):
        checkpoint = str(tmp_path / "sweep.jsonl")
        run_sweep(checkpoint=checkpoint)
        again = run_sweep(checkpoint=checkpoint)
        assert again.resumed_shards == 0
        _header, records = load_checkpoint(checkpoint)
        assert len(records) == again.total_shards

    def test_loader_rejects_malformed_interior_line(self, tmp_path):
        checkpoint = str(tmp_path / "sweep.jsonl")
        run_sweep(checkpoint=checkpoint)
        lines = open(checkpoint).read().strip().split("\n")
        lines[1] = "not json"
        with open(checkpoint, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="malformed"):
            load_checkpoint(checkpoint)


class TestPackedEngineParallel:
    """The packed engines through the shot-sharded runner."""

    def test_packed_records_match_framesim_bit_for_bit(self):
        reference = run_sweep()
        packed = run_sweep(engine="packed")
        assert committed_records(reference) == committed_records(packed)
        assert reference.sweep.series(True) == packed.sweep.series(True)

    def test_packed_fast_worker_invariance(self):
        serial = run_sweep(engine="packed-fast", workers=1)
        pooled = run_sweep(engine="packed-fast", workers=4)
        assert committed_records(serial) == committed_records(pooled)

    def test_packed_checkpoint_resume(self, tmp_path):
        checkpoint = str(tmp_path / "sweep.jsonl")
        full = run_sweep(engine="packed", checkpoint=checkpoint)
        lines = open(checkpoint).read().strip().split("\n")
        with open(checkpoint, "w") as handle:
            handle.write("\n".join(lines[:3]) + "\n")
        resumed = run_sweep(
            engine="packed", checkpoint=checkpoint, resume=True
        )
        assert resumed.resumed_shards == 2
        assert committed_records(resumed) == committed_records(full)

    def test_framesim_checkpoint_resumes_under_packed(self, tmp_path):
        """framesim and packed share one exact RNG stream, so a
        checkpoint written by one legally resumes under the other."""
        checkpoint = str(tmp_path / "sweep.jsonl")
        full = run_sweep(checkpoint=checkpoint)
        lines = open(checkpoint).read().strip().split("\n")
        with open(checkpoint, "w") as handle:
            handle.write("\n".join(lines[:3]) + "\n")
        resumed = run_sweep(
            engine="packed", checkpoint=checkpoint, resume=True
        )
        assert committed_records(resumed) == committed_records(full)

    def test_packed_fast_checkpoint_is_a_different_sweep(self, tmp_path):
        """packed-fast draws another stream — resuming its checkpoint
        under the exact engines must be refused, and vice versa."""
        checkpoint = str(tmp_path / "sweep.jsonl")
        run_sweep(checkpoint=checkpoint)
        with pytest.raises(ValueError, match="different sweep"):
            run_sweep(
                engine="packed-fast",
                checkpoint=checkpoint,
                resume=True,
            )

    def test_loop_mode_rejects_packed_engine(self):
        with pytest.raises(ValueError, match="batch mode"):
            plan_shards(
                PER_VALUES,
                "x",
                2,
                1,
                None,
                SEED,
                max_logical_errors=2,
                max_windows=60,
                engine="packed",
            )


class TestAggregatorFrontier:
    def _record(self, shard_index, errors=1, windows=10):
        return ShardRecord(
            point_index=0,
            physical_error_rate=1e-3,
            use_pauli_frame=True,
            shard_index=shard_index,
            shots=1,
            error_kind="x",
            mode="batch",
            windows=windows,
            shot_errors=[errors],
            shot_windows=[windows],
            shot_clean=[windows],
            shot_corrections=[0],
        )

    def test_out_of_order_arrival_commits_in_order(self):
        aggregator = ArmAggregator(num_shards=3)
        aggregator.add(self._record(2))
        aggregator.add(self._record(0))
        assert [r.shard_index for r in aggregator.committed] == [0]
        aggregator.add(self._record(1))
        assert [r.shard_index for r in aggregator.committed] == [
            0,
            1,
            2,
        ]
        assert aggregator.done

    def test_records_beyond_satisfied_frontier_are_discarded(self):
        aggregator = ArmAggregator(
            num_shards=10, target_halfwidth=0.5
        )
        aggregator.add(self._record(0, errors=5, windows=100))
        assert aggregator.satisfied
        aggregator.add(self._record(1))
        assert len(aggregator.committed) == 1
        assert aggregator.errors == 5 and aggregator.windows == 100

    def test_duplicate_records_ignored(self):
        aggregator = ArmAggregator(num_shards=2)
        aggregator.add(self._record(0))
        aggregator.add(self._record(0, errors=99))
        assert aggregator.errors == 1


class TestParallelCli:
    def test_ler_parallel_smoke(self, capsys):
        code = cli_main(
            [
                "ler",
                "--per",
                "8e-3",
                "--workers",
                "1",
                "--batch",
                "4",
                "--windows",
                "4",
                "--shard-shots",
                "2",
                "--seed",
                "9",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "shards: " in out and "95% CI" in out

    def test_sweep_parallel_checkpoint_resume(self, tmp_path, capsys):
        checkpoint = str(tmp_path / "cli.jsonl")
        base = [
            "sweep",
            "--per",
            "8e-3",
            "--samples",
            "4",
            "--batch",
            "4",
            "--workers",
            "1",
            "--shard-shots",
            "2",
            "--checkpoint",
            checkpoint,
        ]
        assert cli_main(base) == 0
        first = capsys.readouterr().out
        assert cli_main(base + ["--resume"]) == 0
        second = capsys.readouterr().out
        assert "4 resumed from checkpoint" in second
        assert "0 executed" in second
        assert first.splitlines()[1] == second.splitlines()[1]
