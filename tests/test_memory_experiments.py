"""Tests for the circuit-level distance-d memory experiments."""

import numpy as np
import pytest

from repro.codes.rotated import (
    RotatedSurfaceCode,
    ancilla_count,
    parallel_esm,
    plaquette_neighbors,
    total_qubits,
)
from repro.decoders import WindowedMatchingDecoder
from repro.experiments.memory import (
    CircuitLevelBlockExperiment,
    CircuitLevelMemoryExperiment,
)
from repro.qpdo import StabilizerCore


class TestRotatedEsm:
    @pytest.mark.parametrize("distance", [3, 5, 7])
    def test_structure(self, distance):
        code = RotatedSurfaceCode(distance)
        esm = parallel_esm(code)
        assert esm.circuit.num_slots() == 8
        assert len(esm.x_measurements) == len(code.x_plaquettes)
        assert len(esm.z_measurements) == len(code.z_plaquettes)
        # Total CNOTs equal the sum of plaquette weights.
        cnots = sum(
            1 for o in esm.circuit.operations() if o.name == "cnot"
        )
        expected = sum(
            len(p.data_qubits)
            for p in code.x_plaquettes + code.z_plaquettes
        )
        assert cnots == expected

    @pytest.mark.parametrize("distance", [3, 5, 7])
    def test_no_slot_conflicts(self, distance):
        code = RotatedSurfaceCode(distance)
        esm = parallel_esm(code)
        for slot in esm.circuit:
            qubits = [q for o in slot for q in o.qubits]
            assert len(qubits) == len(set(qubits))

    def test_d3_matches_sc17_counts(self):
        code = RotatedSurfaceCode(3)
        esm = parallel_esm(code)
        assert esm.circuit.num_operations() == 48  # Table 5.8

    def test_neighbors_cover_plaquette(self):
        code = RotatedSurfaceCode(5)
        for plaquette in code.x_plaquettes + code.z_plaquettes:
            neighbors = plaquette_neighbors(code, plaquette)
            covered = {
                q for q in neighbors.values() if q is not None
            }
            assert covered == set(plaquette.data_qubits)

    def test_counts_helpers(self):
        code = RotatedSurfaceCode(5)
        assert ancilla_count(code) == 24
        assert total_qubits(code) == 49

    def test_qubit_map_checked(self):
        code = RotatedSurfaceCode(3)
        with pytest.raises(ValueError):
            parallel_esm(code, qubit_map=list(range(5)))

    def test_second_round_repeats_first(self):
        code = RotatedSurfaceCode(5)
        core = StabilizerCore(seed=3)
        core.createqubit(total_qubits(code))
        first = parallel_esm(code)
        core.add(first.circuit)
        syndromes_1 = first.syndromes(core.execute())
        second = parallel_esm(code)
        core.add(second.circuit)
        syndromes_2 = second.syndromes(core.execute())
        assert syndromes_1 == syndromes_2


class TestWindowedMatchingDecoder:
    def test_matches_lut_behaviour_on_d3(self):
        from repro.decoders import (
            SyndromeRound,
            WindowedLutDecoder,
            syndrome_of,
        )

        code = RotatedSurfaceCode(3)
        matching = WindowedMatchingDecoder(code)
        trivial = SyndromeRound.from_bits([0] * 4, [0] * 4)
        matching.initialize([trivial] * 3)
        error = np.eye(9, dtype=np.uint8)[4]
        z_syndrome = list(syndrome_of(code.z_check_matrix, error))
        noisy = SyndromeRound.from_bits([0] * 4, z_syndrome)
        decision = matching.decode_window([noisy, noisy])
        residual = error.astype(bool) ^ decision.x_corrections
        assert not syndrome_of(
            code.z_check_matrix, residual.astype(np.uint8)
        ).any()

    def test_no_lut_is_built(self):
        """d=7 construction must be instant (no 2^24 LUT)."""
        code = RotatedSurfaceCode(7)
        decoder = WindowedMatchingDecoder(code)
        assert not hasattr(decoder, "two_lut") or True
        assert decoder.x_check_matrix.shape[0] == len(code.x_plaquettes)


class TestWindowedMemoryExperiment:
    def test_noiseless_run(self):
        experiment = CircuitLevelMemoryExperiment(
            3, 0.0, max_logical_errors=1, max_windows=5, seed=1
        )
        result = experiment.run()
        assert result.windows == 5
        assert result.logical_errors == 0
        assert result.clean_windows == 5

    def test_noisy_run_terminates(self):
        experiment = CircuitLevelMemoryExperiment(
            3, 8e-3, max_logical_errors=2, seed=2
        )
        result = experiment.run()
        assert result.logical_errors == 2
        assert 0 < result.logical_error_rate < 1

    def test_d3_matches_sc17_harness_scale(self):
        """The generalised harness at d=3 must land in the same LER
        decade as the SC17-specific one."""
        from repro.experiments.ler import LerExperiment

        general = CircuitLevelMemoryExperiment(
            3, 6e-3, max_logical_errors=6, seed=3
        ).run()
        specific = LerExperiment(
            6e-3, use_pauli_frame=False, max_logical_errors=6, seed=3
        ).run()
        ratio = general.logical_error_rate / max(
            specific.logical_error_rate, 1e-9
        )
        assert 0.2 < ratio < 5.0

    def test_pauli_frame_variant_runs(self):
        experiment = CircuitLevelMemoryExperiment(
            3, 8e-3, use_pauli_frame=True, max_logical_errors=2, seed=4
        )
        result = experiment.run()
        assert result.use_pauli_frame
        assert result.logical_errors == 2


class TestBlockExperiment:
    def test_noiseless_block_never_fails(self):
        experiment = CircuitLevelBlockExperiment(3, 0.0, seed=5)
        result = experiment.estimate_ler(trials=10)
        assert result.logical_errors == 0

    def test_noisy_blocks_fail_sometimes(self):
        experiment = CircuitLevelBlockExperiment(3, 2e-2, seed=6)
        result = experiment.estimate_ler(trials=60)
        assert result.logical_errors > 0

    def test_d5_runs(self):
        experiment = CircuitLevelBlockExperiment(5, 5e-3, seed=7)
        result = experiment.estimate_ler(trials=15)
        assert result.distance == 5
        assert 0 <= result.logical_errors <= 15

    def test_rounds_override(self):
        experiment = CircuitLevelBlockExperiment(
            3, 0.0, seed=8, rounds=1
        )
        assert experiment.rounds == 1
        result = experiment.estimate_ler(trials=3)
        assert result.logical_errors == 0
