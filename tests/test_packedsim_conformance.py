"""Conformance gate of the bit-packed frame-differential engine.

The packed engine's contract has two halves, and both are tested at
the bit level where possible:

* ``engine="packed"`` (exact RNG mode) consumes the same random
  stream as ``framesim`` draw for draw, so sampled measurement
  streams and whole-experiment :class:`BatchCounts` must be
  **bit-identical** — across every arm, error kind, window shape, and
  in particular across shot counts that exercise the ragged last
  ``uint64`` word (1, 63, 64, 65, 1000);
* ``engine="packed-fast"`` draws noise at the word level: a different
  stream of the same channel, so it is held to the *distributional*
  standard of the differential-fuzz corpus (exact state-vector
  enumeration at small n) instead of bit equality.
"""

import numpy as np
import pytest

from repro.experiments.ler import BatchedLerExperiment
from repro.qpdo import BatchedStabilizerCore, PackedStabilizerCore
from repro.sim import (
    NoiseParameters,
    sample_circuit,
    sample_circuit_packed,
)
from repro.sim.packedsim import PackedFrameSampler, unpack_bits
from repro.sim.framesim import (
    BatchedFrameSampler,
    compile_frame_program,
)
from repro.codes.surface17.esm import parallel_esm

from .test_framesim_equivalence import exact_distribution
from .test_fuzz_differential import (
    CORPUS_SEEDS,
    _chisquare_against_exact,
    random_noisy_circuit,
)

#: The ragged-last-word shot counts: below, at, and above one word,
#: plus the single-shot degenerate case and a many-word count.
RAGGED_SHOTS = (1, 63, 64, 65)


def counts_tuple(counts):
    return (
        counts.logical_errors.tolist(),
        counts.clean_windows.tolist(),
        counts.corrections_commanded.tolist(),
    )


def run_counts(engine, **kwargs):
    defaults = dict(
        physical_error_rate=8e-3,
        num_shots=65,
        windows=5,
        seed=23,
    )
    defaults.update(kwargs)
    return BatchedLerExperiment(engine=engine, **defaults).run_counts()


class TestBatchCountsBitIdentity:
    """engine="packed" == engine="framesim", bit for bit."""

    @pytest.mark.parametrize("num_shots", RAGGED_SHOTS)
    @pytest.mark.parametrize("use_frame", [False, True])
    def test_ragged_shot_counts(self, num_shots, use_frame):
        reference = run_counts(
            "framesim", num_shots=num_shots, use_pauli_frame=use_frame
        )
        packed = run_counts(
            "packed", num_shots=num_shots, use_pauli_frame=use_frame
        )
        assert counts_tuple(reference) == counts_tuple(packed)

    @pytest.mark.parametrize("error_kind", ["x", "z"])
    @pytest.mark.parametrize("use_frame", [False, True])
    def test_arms_and_error_kinds(self, error_kind, use_frame):
        reference = run_counts(
            "framesim", error_kind=error_kind, use_pauli_frame=use_frame
        )
        packed = run_counts(
            "packed", error_kind=error_kind, use_pauli_frame=use_frame
        )
        assert counts_tuple(reference) == counts_tuple(packed)

    @pytest.mark.parametrize(
        "shape",
        [
            # (rounds_per_window, init_rounds, use_majority_vote)
            (1, 3, True),  # odd history: no drop-oldest
            (3, 5, True),  # even history: drop-oldest path
            (2, 3, False),  # last-round-only (no vote)
        ],
    )
    def test_window_shapes(self, shape):
        rounds, init, vote = shape
        kwargs = dict(
            rounds_per_window=rounds,
            init_rounds=init,
            use_majority_vote=vote,
        )
        reference = run_counts("framesim", **kwargs)
        packed = run_counts("packed", **kwargs)
        assert counts_tuple(reference) == counts_tuple(packed)

    def test_per_shot_decoder_path(self):
        reference = run_counts(
            "framesim", num_shots=5, decoder_impl="per-shot"
        )
        packed = run_counts(
            "packed", num_shots=5, decoder_impl="per-shot"
        )
        assert counts_tuple(reference) == counts_tuple(packed)

    def test_thousand_shots(self):
        """15.6 words + 40 ragged tail bits, both arms."""
        for use_frame in (False, True):
            reference = run_counts(
                "framesim",
                num_shots=1000,
                windows=3,
                use_pauli_frame=use_frame,
            )
            packed = run_counts(
                "packed",
                num_shots=1000,
                windows=3,
                use_pauli_frame=use_frame,
            )
            assert counts_tuple(reference) == counts_tuple(packed)


class TestSamplerBitIdentity:
    """sample_circuit_packed == sample_circuit on the fuzz corpus."""

    @pytest.mark.parametrize("fuzz_seed", CORPUS_SEEDS)
    def test_fuzz_corpus_streams(self, fuzz_seed):
        rng = np.random.default_rng(fuzz_seed)
        num_qubits = int(rng.integers(2, 6))
        circuit = random_noisy_circuit(
            num_qubits, int(rng.integers(6, 15)), rng
        )
        for shots in RAGGED_SHOTS:
            reference = sample_circuit(
                circuit,
                shots,
                seed=fuzz_seed,
                noise=NoiseParameters(0.08),
                num_qubits=num_qubits,
            )
            packed = sample_circuit_packed(
                circuit,
                shots,
                seed=fuzz_seed,
                noise=NoiseParameters(0.08),
                num_qubits=num_qubits,
            )
            assert np.array_equal(reference, packed), (fuzz_seed, shots)

    def test_split_sampling_matches_one_call(self):
        """Drawing 37 + 63 shots equals one 100-shot call's stream
        split at the same point — per-call draws, not per-stream."""
        esm = parallel_esm(list(range(17)), name="esm")
        program = compile_frame_program(
            esm.circuit, noise=NoiseParameters(5e-3), num_qubits=17
        )
        packed = PackedFrameSampler(program, seed=11)
        reference = BatchedFrameSampler(program, seed=11)
        for block in (37, 63):
            assert np.array_equal(
                packed.sample(block), reference.sample(block)
            )

    def test_noiseless_circuit_matches(self):
        esm = parallel_esm(list(range(17)), name="esm")
        for shots in (1, 65):
            reference = sample_circuit(esm.circuit, shots, seed=3)
            packed = sample_circuit_packed(esm.circuit, shots, seed=3)
            assert np.array_equal(reference, packed)


class TestPackedCoreBitIdentity:
    """The streaming packed core against the unpacked batched core."""

    @pytest.mark.parametrize("num_shots", RAGGED_SHOTS)
    def test_esm_rounds_and_feedback(self, num_shots):
        esm = parallel_esm(list(range(17)), name="esm")
        noise = NoiseParameters(8e-3, active_qubits=range(17))
        reference = BatchedStabilizerCore(
            num_shots, noise=noise, seed=42
        )
        packed = PackedStabilizerCore(num_shots, noise=noise, seed=42)
        reference.createqubit(17)
        packed.createqubit(17)
        rng = np.random.default_rng(7)
        for _ in range(3):
            reference.add(esm.circuit)
            packed.add(esm.circuit)
            result_ref = reference.execute()
            result_packed = packed.execute()
            for m in esm.x_measurements + esm.z_measurements:
                bits = result_packed.bits_of(m)
                assert np.array_equal(result_ref.bits_of(m), bits)
                assert np.array_equal(
                    bits,
                    unpack_bits(result_packed.words_of(m), num_shots),
                )
            # Random Pauli feedback + masked depolarizing, the two
            # per-shot channels the LER experiment uses.
            x_mask = rng.random((num_shots, 17)) < 0.3
            z_mask = rng.random((num_shots, 17)) < 0.3
            reference.apply_pauli_frame(x_mask, z_mask)
            packed.apply_pauli_frame(x_mask, z_mask)
            shot_mask = rng.random(num_shots) < 0.5
            reference.inject_depolarizing(range(17), shot_mask=shot_mask)
            packed.inject_depolarizing(range(17), shot_mask=shot_mask)

    def test_scalar_core_contract(self):
        """measurements/getstate expose shot 0, as the batched core."""
        esm = parallel_esm(list(range(17)), name="esm")
        noise = NoiseParameters(8e-3, active_qubits=range(17))
        reference = BatchedStabilizerCore(66, noise=noise, seed=9)
        packed = PackedStabilizerCore(66, noise=noise, seed=9)
        reference.createqubit(17)
        packed.createqubit(17)
        reference.add(esm.circuit)
        packed.add(esm.circuit)
        result_ref = reference.execute()
        result_packed = packed.execute()
        assert result_ref.measurements == result_packed.measurements


class TestPackedFastDistribution:
    """packed-fast: a different stream of the same channel."""

    @pytest.mark.parametrize("fuzz_seed", CORPUS_SEEDS[:3])
    def test_matches_exact_distribution(self, fuzz_seed):
        rng = np.random.default_rng(fuzz_seed)
        num_qubits = int(rng.integers(2, 6))
        circuit = random_noisy_circuit(
            num_qubits, int(rng.integers(6, 15)), rng
        )
        expected = exact_distribution(circuit, num_qubits)
        shots = 2000
        samples = sample_circuit_packed(
            circuit,
            shots,
            seed=fuzz_seed + 1,
            num_qubits=num_qubits,
            rng_mode="fast",
        )
        _chisquare_against_exact(
            samples, expected, shots, context=fuzz_seed
        )

    def test_noisy_distribution_matches_exact(self):
        """Fast-mode depolarizing sampling against enumeration: run
        a noiseless random circuit under fast-mode built-in noise and
        compare to the exact framesim distribution at matched shots
        (homogeneity via the chi-square helper on pooled streams)."""
        from .test_fuzz_differential import _chisquare_homogeneity

        rng = np.random.default_rng(77)
        num_qubits = 3
        circuit = random_noisy_circuit(num_qubits, 10, rng)
        shots = 4000
        noise = NoiseParameters(0.05)
        reference = sample_circuit(
            circuit, shots, seed=5, noise=noise, num_qubits=num_qubits
        )
        fast = sample_circuit_packed(
            circuit,
            shots,
            seed=6,
            noise=noise,
            num_qubits=num_qubits,
            rng_mode="fast",
        )
        _chisquare_homogeneity(reference, fast, context="packed-fast")

    def test_deterministic_for_fixed_seed(self):
        first = run_counts("packed-fast", num_shots=128, windows=3)
        second = run_counts("packed-fast", num_shots=128, windows=3)
        assert counts_tuple(first) == counts_tuple(second)


class TestEngineValidation:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            BatchedLerExperiment(8e-3, num_shots=4, engine="quantum")

    def test_packed_core_refuses_non_clifford(self):
        from repro.circuits import Circuit
        from repro.circuits.operation import Operation

        circuit = Circuit("t")
        circuit.append(Operation("t", (0,)))
        core = PackedStabilizerCore(4, seed=1)
        core.createqubit(1)
        core.add(circuit)
        with pytest.raises(ValueError, match="non-Clifford"):
            core.execute()

    def test_packed_capabilities(self):
        from repro.qpdo.core import (
            CAP_BATCH,
            CAP_NON_CLIFFORD,
            CAP_PACKED,
        )

        core = PackedStabilizerCore(4, seed=1)
        assert core.supports(CAP_BATCH)
        assert core.supports(CAP_PACKED)
        assert not core.supports(CAP_NON_CLIFFORD)
