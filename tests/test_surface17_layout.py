"""Tests for the SC17 layout: stabilizers, logicals, pairings."""

import numpy as np
import pytest

from repro.codes.surface17 import (
    ALL_PLAQUETTES,
    NUM_ANCILLA,
    NUM_DATA,
    ROTATED_PAIRING,
    X_CHECK_MATRIX,
    X_PLAQUETTES,
    Z_CHECK_MATRIX,
    Z_PLAQUETTES,
    cnot_pairing,
    cz_pairing,
    logical_x,
    logical_z,
    stabilizer_paulis,
)


class TestStabilizers:
    def test_counts(self):
        assert NUM_DATA == 9
        assert NUM_ANCILLA == 8
        assert len(X_PLAQUETTES) == 4
        assert len(Z_PLAQUETTES) == 4

    def test_table_2_1_x_stabilizers(self):
        supports = [p.data_qubits for p in X_PLAQUETTES]
        assert supports == [(0, 1, 3, 4), (1, 2), (4, 5, 7, 8), (6, 7)]

    def test_table_2_1_z_stabilizers(self):
        supports = [p.data_qubits for p in Z_PLAQUETTES]
        assert supports == [(0, 3), (1, 2, 4, 5), (3, 4, 6, 7), (5, 8)]

    def test_all_stabilizers_commute(self):
        stabilizers = stabilizer_paulis()
        for i, a in enumerate(stabilizers):
            for b in stabilizers[i + 1 :]:
                assert a.commutes_with(b)

    def test_check_matrices_match_plaquettes(self):
        assert X_CHECK_MATRIX.shape == (4, 9)
        assert Z_CHECK_MATRIX.shape == (4, 9)
        assert X_CHECK_MATRIX.sum() == 12  # 4+2+4+2 CNOT touches
        assert Z_CHECK_MATRIX.sum() == 12

    def test_css_commutation_condition(self):
        """Hx @ Hz^T = 0 mod 2 for a valid CSS code."""
        product = (X_CHECK_MATRIX @ Z_CHECK_MATRIX.T) % 2
        assert not product.any()

    def test_local_ancilla_numbering(self):
        assert [p.local_ancilla for p in ALL_PLAQUETTES] == list(
            range(9, 17)
        )


class TestLogicalOperators:
    def test_normal_orientation_supports(self):
        assert sorted(logical_x().support()) == [2, 4, 6]
        assert sorted(logical_z().support()) == [0, 4, 8]

    def test_rotated_orientation_swaps_supports(self):
        assert sorted(logical_x(rotated=True).support()) == [0, 4, 8]
        assert sorted(logical_z(rotated=True).support()) == [2, 4, 6]

    @pytest.mark.parametrize("rotated", [False, True])
    def test_logicals_commute_with_stabilizers(self, rotated):
        stabilizers = [
            s if not rotated else _hadamard_all(s)
            for s in stabilizer_paulis()
        ]
        xl = logical_x(rotated=rotated)
        zl = logical_z(rotated=rotated)
        for stabilizer in stabilizers:
            assert xl.commutes_with(stabilizer)
            assert zl.commutes_with(stabilizer)

    def test_logicals_anticommute_with_each_other(self):
        assert not logical_x().commutes_with(logical_z())
        assert not logical_x(rotated=True).commutes_with(
            logical_z(rotated=True)
        )

    def test_distance_three(self):
        assert logical_x().weight == 3
        assert logical_z().weight == 3


def _hadamard_all(pauli):
    duplicate = pauli.copy()
    for qubit in range(duplicate.num_qubits):
        duplicate.apply_h(qubit)
    return duplicate


class TestPairings:
    def test_same_orientation_cnot_is_identity_pairing(self):
        assert cnot_pairing(True) == tuple((n, n) for n in range(9))

    def test_rotated_cnot_pairing_matches_paper(self):
        """Section 2.6.1 lists the exact pairs."""
        expected = (
            (0, 6),
            (1, 3),
            (2, 0),
            (3, 7),
            (4, 4),
            (5, 1),
            (6, 8),
            (7, 5),
            (8, 2),
        )
        assert cnot_pairing(False) == expected
        assert ROTATED_PAIRING == (6, 3, 0, 7, 4, 1, 8, 5, 2)

    def test_rotated_pairing_is_a_permutation(self):
        assert sorted(ROTATED_PAIRING) == list(range(9))

    def test_cz_pairing_is_mirrored(self):
        """CZ uses the rotated pairing exactly when CNOT does not."""
        assert cz_pairing(True) == cnot_pairing(False)
        assert cz_pairing(False) == cnot_pairing(True)

    def test_rotated_pairing_has_order_four(self):
        """A 90-degree rotation returns home after four applications."""
        for n in range(9):
            m = n
            for _ in range(4):
                m = ROTATED_PAIRING[m]
            assert m == n
        # ... but not after two (it is a genuine rotation, not a flip).
        assert any(
            ROTATED_PAIRING[ROTATED_PAIRING[n]] != n for n in range(9)
        )
