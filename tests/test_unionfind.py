"""The array-native union-find decoder (growth, peeling, batching).

Three layers of assurance:

* **exactness where exactness is checkable** — every low-weight error
  at d <= 5 must land in the same homology class as the Blossom MWPM
  correction (identical logical outcome), and the d = 3 dense tables
  are pinned by golden digests;
* **Hypothesis properties of the kernels** — path-doubling root
  finding is a projection onto fixed points, grown forests always peel
  to a syndrome-reproducing correction;
* **batch semantics** — ``decode_batch`` equals the per-shot loop and
  dedupes identical syndromes.
"""

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes.rotated import RotatedSurfaceCode
from repro.decoders import (
    MwpmDecoder,
    boundary_qubits_for,
    syndrome_of,
)
from repro.decoders.spacetime import SpaceTimeMatchingDecoder
from repro.decoders.unionfind import (
    SpaceTimeUnionFindDecoder,
    UnionFindDecoder,
    build_space_graph,
    build_space_time_graph,
    find_roots,
    grow_clusters,
    peel_forest,
    unionfind_dense_lut,
)

#: SHA-256 prefixes of the packed d = 3 dense union-find tables (one
#: per check species) — any change to growth, peeling or the graph
#: construction shows up here.
GOLDEN_D3_DIGESTS = {
    "x": "98387b1bfaa5a528",
    "z": "a12a830e49fc36d8",
}


def _decoder(code, species="z"):
    return UnionFindDecoder(
        getattr(code, f"{species}_check_matrix"),
        boundary_qubits_for(code, species),
    )


def _logical_mask(code):
    mask = np.zeros(code.num_data, dtype=bool)
    for qubit in code.logical_z_support():
        mask[qubit] = True
    return mask


def _assert_valid(code, error, correction):
    """The correction reproduces the syndrome (residual is silent)."""
    residual = error.astype(bool) ^ correction
    assert not syndrome_of(
        code.z_check_matrix, residual.astype(np.uint8)
    ).any()
    return residual


class TestAgainstMwpm:
    @pytest.mark.parametrize("distance", [3, 5])
    def test_single_errors_match_mwpm_class(self, distance):
        code = RotatedSurfaceCode(distance)
        uf = _decoder(code)
        mwpm = MwpmDecoder(
            code.z_check_matrix, boundary_qubits_for(code, "z")
        )
        logical = _logical_mask(code)
        for qubit in range(code.num_data):
            error = np.zeros(code.num_data, dtype=np.uint8)
            error[qubit] = 1
            syndrome = syndrome_of(code.z_check_matrix, error)
            residual_uf = _assert_valid(code, error, uf.decode(syndrome))
            residual_mw = _assert_valid(
                code, error, mwpm.decode(syndrome)
            )
            assert (
                int((residual_uf & logical).sum()) % 2
                == int((residual_mw & logical).sum()) % 2
            )

    def test_weight_two_errors_match_mwpm_class(self):
        # Weight-2 errors sit inside the d = 5 correction radius
        # (floor((d-1)/2) = 2), where any sound decoder must restore
        # the codeword — so union-find and Blossom must agree on the
        # homology class.  At d = 3 the radius is 1 and weight-2
        # disagreement is legitimate, so d = 3 is excluded.
        code = RotatedSurfaceCode(5)
        uf = _decoder(code)
        mwpm = MwpmDecoder(
            code.z_check_matrix, boundary_qubits_for(code, "z")
        )
        logical = _logical_mask(code)
        for a in range(code.num_data):
            for b in range(a + 1, code.num_data):
                error = np.zeros(code.num_data, dtype=np.uint8)
                error[a] = error[b] = 1
                syndrome = syndrome_of(code.z_check_matrix, error)
                residual_uf = _assert_valid(
                    code, error, uf.decode(syndrome)
                )
                residual_mw = _assert_valid(
                    code, error, mwpm.decode(syndrome)
                )
                uf_class = int((residual_uf & logical).sum()) % 2
                mw_class = int((residual_mw & logical).sum()) % 2
                assert uf_class == mw_class, (a, b)

    def test_trivial_syndrome_no_correction(self):
        code = RotatedSurfaceCode(5)
        decoder = _decoder(code)
        assert not decoder.decode(
            np.zeros(len(code.z_plaquettes), dtype=int)
        ).any()


class TestGoldenDigests:
    @pytest.mark.parametrize("species", ["x", "z"])
    def test_dense_d3_table_pinned(self, species):
        code = RotatedSurfaceCode(3)
        table, complete = unionfind_dense_lut(
            getattr(code, f"{species}_check_matrix"),
            boundary_qubits_for(code, species),
        )
        assert table.shape == (16, 9)
        assert complete.all()
        digest = hashlib.sha256(
            np.packbits(table.astype(np.uint8)).tobytes()
        ).hexdigest()[:16]
        assert digest == GOLDEN_D3_DIGESTS[species]


class TestKernelProperties:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=50, deadline=None)
    def test_find_roots_is_idempotent_projection(self, seed):
        rng = np.random.default_rng(seed)
        size = int(rng.integers(2, 40))
        parent = np.arange(size, dtype=np.int64)
        # A random forest: point some nodes at strictly smaller ones,
        # guaranteeing acyclicity.
        for node in range(1, size):
            if rng.random() < 0.7:
                parent[node] = int(rng.integers(0, node))
        nodes = np.arange(size, dtype=np.int64)
        roots = find_roots(parent, nodes)
        assert np.array_equal(parent[roots], roots)
        assert np.array_equal(find_roots(parent, nodes), roots)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_grow_and_peel_reproduce_any_syndrome(self, seed):
        """Any realizable syndrome decodes to a silencing correction."""
        rng = np.random.default_rng(seed)
        code = RotatedSurfaceCode(5)
        decoder = _decoder(code)
        error = (rng.random(code.num_data) < 0.12).astype(np.uint8)
        syndrome = syndrome_of(code.z_check_matrix, error)
        _assert_valid(code, error, decoder.decode(syndrome))

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_grown_forest_spans_defects(self, seed):
        """Every defect ends in a cluster the forest connects."""
        rng = np.random.default_rng(seed)
        code = RotatedSurfaceCode(5)
        graph = build_space_graph(
            code.z_check_matrix, boundary_qubits_for(code, "z")
        )
        error = (rng.random(code.num_data) < 0.1).astype(np.uint8)
        syndrome = syndrome_of(code.z_check_matrix, error)
        defects = np.zeros(graph.num_nodes, dtype=bool)
        defects[: graph.num_checks] = syndrome.astype(bool)
        parent, forest = grow_clusters(graph, defects)
        # peeling must terminate without unpaired defects
        correction = peel_forest(graph, forest, defects)
        assert correction.shape == (graph.num_qubits,)
        # every cluster holding defects has even defect parity or
        # touches the boundary
        roots = find_roots(parent, np.arange(graph.num_nodes))
        boundary_root = roots[graph.boundary_node]
        parity = np.bincount(
            roots[defects], minlength=graph.num_nodes
        )
        odd = np.flatnonzero(parity % 2)
        assert all(root == boundary_root for root in odd)


class TestBatchSemantics:
    def test_decode_batch_equals_per_shot(self):
        rng = np.random.default_rng(11)
        code = RotatedSurfaceCode(5)
        decoder = _decoder(code)
        errors = rng.random((24, code.num_data)) < 0.08
        syndromes = (
            errors.astype(np.uint8) @ code.z_check_matrix.T
        ) % 2
        batch = decoder.decode_batch(syndromes.astype(bool))
        for shot in range(syndromes.shape[0]):
            assert np.array_equal(
                batch[shot], decoder.decode(syndromes[shot])
            )

    def test_spacetime_batch_equals_history(self):
        rng = np.random.default_rng(5)
        code = RotatedSurfaceCode(3)
        decoder = SpaceTimeUnionFindDecoder(
            code.z_check_matrix, boundary_qubits_for(code, "z")
        )
        histories = rng.random((10, 4, len(code.z_plaquettes))) < 0.2
        batch = decoder.decode_batch(histories)
        for shot in range(histories.shape[0]):
            assert np.array_equal(
                batch[shot], decoder.decode_history(histories[shot])
            )

    def test_detection_events_match_mwpm_transform(self):
        rng = np.random.default_rng(3)
        code = RotatedSurfaceCode(3)
        boundary = boundary_qubits_for(code, "z")
        uf = SpaceTimeUnionFindDecoder(code.z_check_matrix, boundary)
        mwpm = SpaceTimeMatchingDecoder(code.z_check_matrix, boundary)
        history = rng.random((5, len(code.z_plaquettes))) < 0.3
        assert sorted(uf.detection_events(history)) == sorted(
            mwpm.detection_events(history)
        )

    def test_decode_events_equals_decode_history(self):
        rng = np.random.default_rng(7)
        code = RotatedSurfaceCode(3)
        decoder = SpaceTimeUnionFindDecoder(
            code.z_check_matrix, boundary_qubits_for(code, "z")
        )
        history = rng.random((4, len(code.z_plaquettes))) < 0.25
        events = decoder.detection_events(history)
        assert np.array_equal(
            decoder.decode_events(events, rounds=4),
            decoder.decode_history(history),
        )


class TestSpaceTimeGraph:
    def test_layer_and_temporal_edge_counts(self):
        code = RotatedSurfaceCode(3)
        rounds = 4
        space = build_space_graph(
            code.z_check_matrix, boundary_qubits_for(code, "z")
        )
        spacetime = build_space_time_graph(
            code.z_check_matrix,
            boundary_qubits_for(code, "z"),
            rounds,
        )
        num_checks = len(code.z_plaquettes)
        assert spacetime.num_nodes == rounds * num_checks + 1
        assert spacetime.num_edges == (
            rounds * space.num_edges + (rounds - 1) * num_checks
        )
        temporal = spacetime.edge_qubit < 0
        assert int(temporal.sum()) == (rounds - 1) * num_checks

    def test_time_weight_scales_temporal_capacity(self):
        code = RotatedSurfaceCode(3)
        graph = build_space_time_graph(
            code.z_check_matrix,
            boundary_qubits_for(code, "z"),
            3,
            time_weight=2.0,
        )
        temporal = graph.edge_qubit < 0
        assert (graph.edge_capacity[temporal] == 4).all()
        assert (graph.edge_capacity[~temporal] == 2).all()

    def test_invalid_parameters_rejected(self):
        code = RotatedSurfaceCode(3)
        boundary = boundary_qubits_for(code, "z")
        with pytest.raises(ValueError):
            build_space_time_graph(code.z_check_matrix, boundary, 0)
        with pytest.raises(ValueError):
            build_space_time_graph(
                code.z_check_matrix, boundary, 2, time_weight=0
            )
