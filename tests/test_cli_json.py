"""Tests for the CLI's --json documents, schemas and telemetry flags."""

import json

import pytest

from repro.experiments.results import result_from_json_dict
from repro.experiments.schemas import REPORT_SCHEMAS
from repro.tools.validate_cli_json import (
    run_subcommand,
    subcommand_invocations,
    validate_document,
)

jsonschema = pytest.importorskip("jsonschema")


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    """A real trace produced by a tiny traced CLI run."""
    path = str(
        tmp_path_factory.mktemp("trace") / "trace.jsonl"
    )
    code, _ = run_subcommand(
        ["ler", "--per", "1e-2", "--errors", "2", "--trace", path]
    )
    assert code == 0
    return path


def _fast_invocations(trace_path):
    cases = subcommand_invocations(trace_path)
    # Trim the heaviest Monte-Carlo knobs further for the test-suite.
    cases["verify"] = [
        "verify", "--iterations", "1", "--qubits", "3",
        "--gates", "10",
    ]
    cases["distance"] = [
        "distance", "--distances", "3", "--per", "0.05",
        "--trials", "20",
    ]
    cases["phenomenological"] = [
        "phenomenological", "--distances", "3", "--per", "0.02",
        "--trials", "10",
    ]
    cases["memory"] = ["memory", "--distances", "3", "--trials", "2"]
    return cases


def test_every_subcommand_has_an_invocation_and_schema(trace_path):
    from repro.cli import _HANDLERS

    cases = subcommand_invocations(trace_path)
    assert set(cases) == set(_HANDLERS)
    # Every case's document kind is registered; the serve subcommand
    # contributes the whole wire-document family beyond its own kind.
    serve_kinds = {
        "job_status",
        "job_result",
        "job_list",
        "serve_error",
        "serve_health",
        "serve_selftest",
    }
    assert serve_kinds <= set(REPORT_SCHEMAS)
    assert len(REPORT_SCHEMAS) == len(cases) + len(serve_kinds) - 1


@pytest.mark.parametrize(
    "command",
    [
        "verify",
        "ler",
        "sweep",
        "census",
        "schedule",
        "bound",
        "distance",
        "phenomenological",
        "memory",
        "inject",
        "report",
        "serve",
        "lint-circuit",
        "lint-code",
    ],
)
def test_json_document_validates_and_round_trips(
    command, trace_path
):
    argv = _fast_invocations(trace_path)[command]
    code, output = run_subcommand(argv + ["--json"])
    assert code == 0
    payload = validate_document(command, output)
    # validate_document already schema-checks and round-trips; pin
    # the discriminator → dataclass dispatch here as well.
    rebuilt = result_from_json_dict(payload)
    assert rebuilt.kind == payload["kind"]


def test_json_flag_accepted_before_subcommand():
    code, output = run_subcommand(["--json", "schedule"])
    assert code == 0
    payload = json.loads(output)
    assert payload["kind"] == "schedule_report"


def test_human_output_is_not_json():
    code, output = run_subcommand(["schedule"])
    assert code == 0
    assert "deadline relaxed" in output
    with pytest.raises(json.JSONDecodeError):
        json.loads(output)


def test_validate_document_rejects_multiple_documents():
    with pytest.raises(AssertionError, match="exactly one"):
        validate_document("x", '{"kind": "a"}\n{"kind": "b"}\n')


def test_ler_parallel_json_carries_shard_metadata(tmp_path):
    code, output = run_subcommand(
        [
            "ler",
            "--batch",
            "10",
            "--windows",
            "20",
            "--shard-shots",
            "5",
            "--json",
        ]
    )
    assert code == 0
    payload = json.loads(output)
    jsonschema.validate(payload, REPORT_SCHEMAS["ler_report"])
    assert payload["mode"] == "parallel"
    assert payload["committed_shards"] == 4  # 2 arms x 2 shards
    arms = payload["arms"]
    assert [arm["use_pauli_frame"] for arm in arms] == [False, True]
    assert all(arm["wilson_low"] is not None for arm in arms)


def test_sweep_parallel_json_carries_per_point_arms():
    code, output = run_subcommand(
        [
            "sweep",
            "--per",
            "6e-3",
            "1e-2",
            "--samples",
            "10",
            "--batch",
            "10",
            "--workers",
            "1",
            "--shard-shots",
            "5",
            "--json",
        ]
    )
    assert code == 0
    payload = json.loads(output)
    jsonschema.validate(payload, REPORT_SCHEMAS["sweep_report"])
    assert [arm["point_index"] for arm in payload["arms"]] == [
        0,
        0,
        1,
        1,
    ]
    rebuilt = result_from_json_dict(payload)
    assert json.loads(rebuilt.to_json()) == payload


def test_trace_and_metrics_flags(tmp_path, capsys):
    from repro.cli import main
    from repro.telemetry import aggregate_trace, load_trace

    path = str(tmp_path / "t.jsonl")
    code = main(
        [
            "ler",
            "--per",
            "1e-2",
            "--errors",
            "2",
            "--trace",
            path,
            "--metrics",
        ]
    )
    assert code == 0
    captured = capsys.readouterr()
    assert "telemetry summary" in captured.err
    aggregate = aggregate_trace(load_trace(path))
    categories = set(aggregate.categories)
    assert "experiment" in categories
    assert "qpdo" in categories

    # The saved trace renders through the report subcommand.
    code = main(["report", path])
    assert code == 0
    out = capsys.readouterr().out
    assert "span" in out
    assert "experiment/LerExperiment.run" in out


def test_deprecation_gate_walks_package_without_main_modules():
    from repro.tools import check_deprecations

    names = check_deprecations.iter_module_names()
    assert "repro" in names
    assert "repro.cli" in names
    assert "repro.experiments.results" in names
    assert not any(n.rsplit(".", 1)[-1] == "__main__" for n in names)


def test_deprecation_gate_main_reports_offences(monkeypatch, capsys):
    from repro.tools import check_deprecations

    monkeypatch.setattr(
        check_deprecations, "collect_in_tree_deprecations", lambda: []
    )
    assert check_deprecations.main() == 0
    assert "no DeprecationWarning" in capsys.readouterr().out

    monkeypatch.setattr(
        check_deprecations,
        "collect_in_tree_deprecations",
        lambda: [("repro.x", "src/repro/x.py:1: gone")],
    )
    assert check_deprecations.main() == 1
    assert "FAIL importing repro.x" in capsys.readouterr().out


def test_acceptance_trace_covers_all_layers(tmp_path, capsys):
    """repro ler --batch --trace T --metrics, then repro report T."""
    from repro.cli import main

    path = str(tmp_path / "accept.jsonl")
    # A seed no other in-process test uses: the process-level
    # reference-trace cache replays warm structures, and a replayed
    # reference pass (by design) emits no stabilizer-sim spans.
    code = main(
        [
            "ler",
            "--batch",
            "4",
            "--windows",
            "10",
            "--seed",
            "20260808",
            "--trace",
            path,
            "--metrics",
        ]
    )
    assert code == 0
    capsys.readouterr()

    code, output = run_subcommand(["report", path, "--json"])
    assert code == 0
    payload = validate_document("report", output)
    categories = {row["category"] for row in payload["spans"]}
    assert "qpdo" in categories
    simulators = {
        c for c in categories if c.startswith("sim.")
    }
    assert len(simulators) >= 2
    assert any(c.startswith("decoder.") for c in categories)
    assert "parallel" in categories
    event_names = {
        (row["category"], row["name"])
        for row in payload["events"]
    }
    assert ("parallel", "shard_dispatch") in event_names
    assert ("parallel", "shard_commit") in event_names
