"""Unit and property tests for n-qubit Pauli strings."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gates.matrices import matrix_for
from repro.paulis import PauliString, as_pauli_string, random_pauli_string

LABEL_CHARS = "IXYZ"


def labels(min_size=1, max_size=6):
    return st.text(alphabet=LABEL_CHARS, min_size=min_size, max_size=max_size)


def dense_matrix(pauli: PauliString) -> np.ndarray:
    """Dense matrix of a Pauli string (for cross-validation)."""
    phase = 1j**pauli.phase
    result = np.array([[1.0 + 0j]])
    # Qubit 0 is the leftmost label character; build matrix with qubit 0
    # as the most significant factor for an arbitrary-but-fixed order.
    for xb, zb in zip(pauli.x, pauli.z):
        factor = np.eye(2, dtype=complex)
        if xb:
            factor = matrix_for("x") @ factor
        if zb:
            factor = factor @ matrix_for("z")
        result = np.kron(result, factor)
    return phase * result


class TestConstruction:
    def test_from_label_round_trip(self):
        pauli = PauliString.from_label("XIZY")
        assert pauli.to_label() == "XIZY"
        assert pauli.weight == 3

    def test_y_contributes_phase(self):
        y = PauliString.from_label("Y")
        assert y.phase == 1
        assert bool(y.x[0]) and bool(y.z[0])

    def test_single_constructor(self):
        pauli = PauliString.single(4, 2, "Z")
        assert pauli.to_label() == "IIZI"

    def test_from_support(self):
        pauli = PauliString.from_support(5, x_support=[0, 2], z_support=[2])
        assert pauli.to_label() == "XIYII"

    def test_invalid_label_rejected(self):
        with pytest.raises(ValueError):
            PauliString.from_label("XQ")

    def test_as_pauli_string_coerces(self):
        assert as_pauli_string("XX") == PauliString.from_label("XX")


class TestAlgebra:
    @given(labels(2, 5), labels(2, 5))
    @settings(max_examples=60)
    def test_commutation_matches_matrices(self, label_a, label_b):
        if len(label_a) != len(label_b):
            label_b = (label_b * len(label_a))[: len(label_a)]
        a = PauliString.from_label(label_a)
        b = PauliString.from_label(label_b)
        ma, mb = dense_matrix(a), dense_matrix(b)
        commute = np.allclose(ma @ mb, mb @ ma)
        assert a.commutes_with(b) == commute

    @given(labels(1, 4))
    @settings(max_examples=40)
    def test_self_product_is_identity(self, label):
        pauli = PauliString.from_label(label)
        square = pauli * pauli
        assert square.is_identity()
        # Hermitian Paulis square to +I exactly.
        assert square.phase == 0

    @given(labels(2, 4), labels(2, 4))
    @settings(max_examples=40)
    def test_product_phase_matches_matrices(self, label_a, label_b):
        n = min(len(label_a), len(label_b))
        a = PauliString.from_label(label_a[:n])
        b = PauliString.from_label(label_b[:n])
        product = a * b
        expected = dense_matrix(a) @ dense_matrix(b)
        assert np.allclose(dense_matrix(product), expected)

    def test_anticommutation_example(self):
        x = PauliString.from_label("X")
        z = PauliString.from_label("Z")
        assert not x.commutes_with(z)
        assert (x * z).phase != (z * x).phase

    def test_weight_and_support(self):
        pauli = PauliString.from_label("IXIYZ")
        assert pauli.weight == 3
        assert list(pauli.support()) == [1, 3, 4]

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            PauliString.from_label("XX") * PauliString.from_label("X")


class TestConjugation:
    def test_h_swaps_x_and_z(self):
        pauli = PauliString.from_label("XZ")
        pauli.apply_h(0)
        pauli.apply_h(1)
        assert pauli.to_label() == "ZX"

    def test_cnot_propagation(self):
        pauli = PauliString.from_label("XI")
        pauli.apply_cnot(0, 1)
        assert pauli.to_label() == "XX"
        pauli = PauliString.from_label("IZ")
        pauli.apply_cnot(0, 1)
        assert pauli.to_label() == "ZZ"

    def test_cz_propagation(self):
        pauli = PauliString.from_label("XI")
        pauli.apply_cz(0, 1)
        assert pauli.to_label() == "XZ"

    def test_swap(self):
        pauli = PauliString.from_label("XZ")
        pauli.apply_swap(0, 1)
        assert pauli.to_label() == "ZX"

    def test_s_maps_x_to_y_support(self):
        pauli = PauliString.from_label("X")
        pauli.apply_s(0)
        assert pauli.to_label() == "Y"


class TestSyndrome:
    def test_syndrome_flags_anticommuting_checks(self):
        stabilizers = [
            PauliString.from_label("ZZI"),
            PauliString.from_label("IZZ"),
        ]
        error = PauliString.from_label("XII")
        assert list(error.syndrome(stabilizers)) == [True, False]
        error = PauliString.from_label("IXI")
        assert list(error.syndrome(stabilizers)) == [True, True]


class TestRandom:
    def test_random_respects_allow_identity(self, rng):
        for _ in range(20):
            pauli = random_pauli_string(3, rng=rng, allow_identity=False)
            assert not pauli.is_identity()

    def test_random_is_reproducible(self):
        a = random_pauli_string(6, rng=np.random.default_rng(5))
        b = random_pauli_string(6, rng=np.random.default_rng(5))
        assert a == b
