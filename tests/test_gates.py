"""Unit tests for the gate library (metadata + matrices)."""

import math

import numpy as np
import pytest

from repro.gates import (
    GateClass,
    canonical_name,
    classify,
    gate_info,
    is_supported,
    is_unitary,
    matrices_equal_up_to_phase,
    matrix_for,
)
from repro.gates.gateset import (
    CLIFFORD_GENERATORS,
    PAULI_GENERATORS,
    UNIVERSAL_SET,
)
from repro.gates.matrices import STATIC_MATRICES


class TestClassification:
    @pytest.mark.parametrize("gate", ["i", "x", "y", "z"])
    def test_pauli_gates(self, gate):
        assert classify(gate) is GateClass.PAULI
        assert gate_info(gate).is_clifford  # Pauli subset of Clifford

    @pytest.mark.parametrize(
        "gate", ["h", "s", "sdg", "cnot", "cz", "swap"]
    )
    def test_clifford_gates(self, gate):
        assert classify(gate) is GateClass.CLIFFORD
        assert not gate_info(gate).is_pauli

    @pytest.mark.parametrize(
        "gate", ["t", "tdg", "rz", "rx", "ry", "toffoli"]
    )
    def test_non_clifford_gates(self, gate):
        assert classify(gate) is GateClass.NON_CLIFFORD

    def test_prepare_and_measure(self):
        assert classify("prep_z") is GateClass.PREPARE
        assert classify("measure") is GateClass.MEASURE
        assert not gate_info("measure").is_unitary

    def test_aliases_resolve(self):
        assert canonical_name("cx") == "cnot"
        assert canonical_name("ccx") == "toffoli"
        assert canonical_name("reset") == "prep_z"
        assert canonical_name("hadamard") == "h"

    def test_unknown_gate(self):
        assert not is_supported("frobnicate")
        with pytest.raises(KeyError):
            gate_info("frobnicate")

    def test_arity_metadata(self):
        assert gate_info("cnot").num_qubits == 2
        assert gate_info("toffoli").num_qubits == 3
        assert gate_info("rz").num_params == 1

    def test_canonical_sets(self):
        assert set(UNIVERSAL_SET) == {"h", "t", "cnot"}
        assert set(CLIFFORD_GENERATORS) == {"h", "s", "cnot"}
        assert set(PAULI_GENERATORS) == {"x", "z"}


class TestMatrices:
    @pytest.mark.parametrize("name", sorted(STATIC_MATRICES))
    def test_all_static_matrices_are_unitary(self, name):
        assert is_unitary(STATIC_MATRICES[name])

    def test_rotation_gates_are_unitary(self):
        for theta in (0.1, math.pi / 3, 2.5):
            assert is_unitary(matrix_for("rz", theta))
            assert is_unitary(matrix_for("rx", theta))
            assert is_unitary(matrix_for("ry", theta))

    def test_rz_special_angles(self):
        """Eq. 2.6: S = RZ(pi/2), T = RZ(pi/4), Z = RZ(pi)."""
        assert np.allclose(matrix_for("rz", math.pi / 2), matrix_for("s"))
        assert np.allclose(matrix_for("rz", math.pi / 4), matrix_for("t"))
        assert np.allclose(matrix_for("rz", math.pi), matrix_for("z"))

    def test_pauli_gates_are_hermitian(self):
        """Eq. 2.8: the Pauli gates and H are Hermitian."""
        for name in ("x", "y", "z", "h"):
            matrix = matrix_for(name)
            assert np.allclose(matrix, matrix.conj().T)

    def test_xz_anticommute(self):
        """Eq. 2.10: XZ = -ZX."""
        x, z = matrix_for("x"), matrix_for("z")
        assert np.allclose(x @ z, -(z @ x))

    def test_y_decomposition(self):
        """Eq. 2.11: Y = iXZ."""
        assert np.allclose(
            matrix_for("y"), 1j * matrix_for("x") @ matrix_for("z")
        )

    def test_hadamard_relations(self):
        """Eqs 2.13/2.14: HX = ZH and HZ = XH."""
        h, x, z = matrix_for("h"), matrix_for("x"), matrix_for("z")
        assert np.allclose(h @ x, z @ h)
        assert np.allclose(h @ z, x @ h)

    def test_t_squared_is_s(self):
        assert matrices_equal_up_to_phase(
            matrix_for("t") @ matrix_for("t"), matrix_for("s")
        )

    def test_equality_up_to_phase_detects_difference(self):
        assert matrices_equal_up_to_phase(
            matrix_for("x"), -matrix_for("x")
        )
        assert not matrices_equal_up_to_phase(
            matrix_for("x"), matrix_for("z")
        )

    def test_unknown_matrix(self):
        with pytest.raises(KeyError):
            matrix_for("nope")
