"""Wire documents of ``repro.serve``: schemas and round-trips.

Every serve document kind must (a) be registered in the unified
results API, (b) validate against its draft 2020-12 schema in
``REPORT_SCHEMAS``, and (c) round-trip bytes → dataclass → bytes.
The submission schema's rejection behaviour is pinned as well — a
malformed job document must fail validation *before* it can enter
the queue.
"""

import json

import pytest

from repro.experiments.results import (
    RESULT_KINDS,
    result_from_json_dict,
)
from repro.experiments.schemas import REPORT_SCHEMAS
from repro.serve import (
    JOB_SUBMIT_SCHEMA,
    JobListReport,
    JobResultReport,
    JobStatusReport,
    ServeErrorReport,
    ServeHealthReport,
    ServeSelfTestReport,
)

jsonschema = pytest.importorskip("jsonschema")

_STATUS_FIELDS = dict(
    job_id="j1",
    job_kind="ler",
    state="running",
    priority=2,
    attempts=1,
    max_attempts=3,
    seed=1234,
    submitted_seq=0,
    error=None,
    queued_at=100.0,
    started_at=101.5,
    finished_at=None,
)

#: One representative instance per serve document kind.
EXAMPLES = [
    JobStatusReport(**_STATUS_FIELDS),
    JobResultReport(
        job_id="j1",
        job_kind="decode",
        seed=7,
        result={"job_kind": "decode", "decode": {"shots": 2}},
    ),
    JobListReport(
        jobs=[
            {
                key: value
                for key, value in _STATUS_FIELDS.items()
            }
        ]
    ),
    ServeErrorReport(
        error="bad_params", message="no rate", job_id=None
    ),
    ServeHealthReport(
        status="ok",
        workers=2,
        job_slots=1,
        jobs_total=3,
        jobs_pending=1,
        jobs_running=1,
        jobs_done=1,
        jobs_failed=0,
        jobs_cancelled=0,
        fleet_respawns=0,
        uptime_seconds=12.5,
    ),
    ServeSelfTestReport(
        passed=True,
        submitted=2,
        completed=2,
        documents_validated=8,
        health={"status": "ok"},
    ),
]


@pytest.mark.parametrize(
    "report", EXAMPLES, ids=lambda r: r.kind
)
def test_document_validates_against_registered_schema(report):
    payload = report.to_json_dict()
    jsonschema.validate(payload, REPORT_SCHEMAS[report.kind])


@pytest.mark.parametrize(
    "report", EXAMPLES, ids=lambda r: r.kind
)
def test_document_round_trips_through_results_api(report):
    payload = json.loads(report.to_json())
    rebuilt = result_from_json_dict(payload)
    assert type(rebuilt) is type(report)
    assert rebuilt == report
    assert json.loads(rebuilt.to_json()) == payload


def test_all_serve_kinds_registered():
    for kind in (
        "job_status",
        "job_result",
        "job_list",
        "serve_error",
        "serve_health",
        "serve_selftest",
    ):
        assert kind in RESULT_KINDS
        assert kind in REPORT_SCHEMAS


class TestSubmitSchema:
    def _ok(self, payload):
        jsonschema.validate(payload, JOB_SUBMIT_SCHEMA)

    def _rejected(self, payload):
        with pytest.raises(jsonschema.ValidationError):
            self._ok(payload)

    def test_minimal_submission_validates(self):
        self._ok({"job_kind": "ler", "params": {}})

    def test_full_submission_validates(self):
        self._ok(
            {
                "job_id": "mine",
                "job_kind": "sweep",
                "priority": 3,
                "max_attempts": 2,
                "params": {"per_values": [0.01]},
            }
        )

    def test_missing_required_fields_rejected(self):
        self._rejected({"params": {}})
        self._rejected({"job_kind": "ler"})

    def test_unknown_kind_rejected(self):
        self._rejected({"job_kind": "mystery", "params": {}})

    def test_unknown_top_level_field_rejected(self):
        self._rejected(
            {"job_kind": "ler", "params": {}, "color": "red"}
        )

    def test_bad_field_types_rejected(self):
        self._rejected({"job_kind": "ler", "params": []})
        self._rejected(
            {"job_kind": "ler", "params": {}, "priority": "high"}
        )
        self._rejected(
            {"job_kind": "ler", "params": {}, "max_attempts": 0}
        )
        self._rejected({"job_kind": "ler", "params": {}, "job_id": ""})


class TestStatusResultSplit:
    """The deliberate determinism split between status and result."""

    def test_status_carries_timestamps(self):
        payload = JobStatusReport(**_STATUS_FIELDS).to_json_dict()
        assert {"queued_at", "started_at", "finished_at"} <= set(
            payload
        )

    def test_result_carries_no_timestamps(self):
        payload = JobResultReport(
            job_id="a", job_kind="ler", seed=1, result={}
        ).to_json_dict()
        assert not {
            "queued_at", "started_at", "finished_at", "attempts",
        } & set(payload)
