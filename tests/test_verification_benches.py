"""Tests for the Pauli-frame verification benches (paper section 5.2)."""

import pytest

from repro.experiments.verification import (
    run_odd_bell_state_bench,
    run_random_circuit_verification,
)


class TestRandomCircuitVerification:
    def test_states_always_match(self):
        report = run_random_circuit_verification(
            iterations=8, num_qubits=4, num_gates=50, seed=11
        )
        assert report.iterations == 8
        assert report.all_match
        for outcome in report.outcomes:
            assert abs(abs(outcome.global_phase) - 1.0) < 1e-6

    def test_frame_actually_tracked_something(self):
        report = run_random_circuit_verification(
            iterations=6, num_qubits=5, num_gates=60, seed=5
        )
        assert report.total_gates_filtered > 0
        assert any(o.frame_was_dirty for o in report.outcomes)

    def test_clifford_only_gate_set(self):
        from repro.circuits import CLIFFORD_GATE_SET

        report = run_random_circuit_verification(
            iterations=4,
            num_qubits=4,
            num_gates=40,
            seed=3,
            gate_set=CLIFFORD_GATE_SET,
        )
        assert report.all_match

    def test_global_phase_can_be_nontrivial(self):
        """Listing 5.6 exhibits a -1 global phase; over enough random
        circuits at least one non-unity phase must appear."""
        report = run_random_circuit_verification(
            iterations=12, num_qubits=4, num_gates=60, seed=2
        )
        phases = [outcome.global_phase for outcome in report.outcomes]
        assert any(abs(phase - 1.0) > 1e-6 for phase in phases)


class TestOddBellBench:
    def test_histograms_only_odd_outcomes(self):
        report = run_odd_bell_state_bench(iterations=6, seed=4)
        assert report.both_valid
        assert sum(report.histogram_with_frame.values()) == 6
        assert sum(report.histogram_without_frame.values()) == 6

    def test_both_outcomes_occur_overall(self):
        report = run_odd_bell_state_bench(iterations=12, seed=9)
        combined = set(report.histogram_with_frame) | set(
            report.histogram_without_frame
        )
        assert combined == {"01", "10"}
