"""Tests for the distance-d rotated surface code family."""

import numpy as np
import pytest

from repro.codes.rotated import RotatedSurfaceCode
from repro.codes.surface17 import X_CHECK_MATRIX, Z_CHECK_MATRIX


def _row_set(matrix):
    return sorted(tuple(int(v) for v in row) for row in matrix)


class TestConstruction:
    def test_invalid_distances_rejected(self):
        with pytest.raises(ValueError):
            RotatedSurfaceCode(2)
        with pytest.raises(ValueError):
            RotatedSurfaceCode(4)
        with pytest.raises(ValueError):
            RotatedSurfaceCode(1)

    @pytest.mark.parametrize("distance", [3, 5, 7, 9])
    def test_counts(self, distance):
        code = RotatedSurfaceCode(distance)
        assert code.num_data == distance**2
        total_checks = len(code.x_plaquettes) + len(code.z_plaquettes)
        assert total_checks == distance**2 - 1  # one logical qubit

    @pytest.mark.parametrize("distance", [3, 5])
    def test_check_weights(self, distance):
        code = RotatedSurfaceCode(distance)
        for plaquette in code.x_plaquettes + code.z_plaquettes:
            assert len(plaquette.data_qubits) in (2, 4)

    def test_d3_reproduces_sc17(self):
        """The d=3 member must equal the ninja star's stabilizers."""
        code = RotatedSurfaceCode(3)
        assert _row_set(code.x_check_matrix) == _row_set(X_CHECK_MATRIX)
        assert _row_set(code.z_check_matrix) == _row_set(Z_CHECK_MATRIX)


class TestAlgebra:
    @pytest.mark.parametrize("distance", [3, 5, 7])
    def test_all_stabilizers_commute(self, distance):
        code = RotatedSurfaceCode(distance)
        stabilizers = code.stabilizer_paulis()
        for i, a in enumerate(stabilizers):
            for b in stabilizers[i + 1 :]:
                assert a.commutes_with(b)

    @pytest.mark.parametrize("distance", [3, 5, 7])
    def test_css_condition(self, distance):
        code = RotatedSurfaceCode(distance)
        product = (code.x_check_matrix @ code.z_check_matrix.T) % 2
        assert not product.any()

    @pytest.mark.parametrize("distance", [3, 5, 7])
    def test_logical_operators(self, distance):
        code = RotatedSurfaceCode(distance)
        xl = code.logical_x()
        zl = code.logical_z()
        assert xl.weight == distance
        assert zl.weight == distance
        for stabilizer in code.stabilizer_paulis():
            assert xl.commutes_with(stabilizer)
            assert zl.commutes_with(stabilizer)
        assert not xl.commutes_with(zl)

    @pytest.mark.parametrize("distance", [3, 5])
    def test_no_lower_weight_logical_x(self, distance):
        """Brute-force check that the code distance is as claimed.

        Any X pattern of weight < d with trivial Z-check syndrome must
        commute with Z_L (i.e. be a stabilizer product), otherwise the
        distance would be below d.  Exhaustive up to weight 2 (the
        relevant regime for the tests here).
        """
        import itertools

        code = RotatedSurfaceCode(distance)
        z_mask = np.zeros(code.num_data, dtype=bool)
        for qubit in code.logical_z_support():
            z_mask[qubit] = True
        for weight in range(1, min(distance, 3)):
            for support in itertools.combinations(
                range(code.num_data), weight
            ):
                error = np.zeros(code.num_data, dtype=np.uint8)
                error[list(support)] = 1
                syndrome = (code.z_check_matrix @ error) % 2
                if not syndrome.any():
                    overlap = int(error[z_mask].sum())
                    assert overlap % 2 == 0


class TestIndexing:
    def test_data_index_row_major(self):
        code = RotatedSurfaceCode(5)
        assert code.data_index(0, 0) == 0
        assert code.data_index(1, 0) == 5
        assert code.data_index(4, 4) == 24

    def test_every_data_qubit_checked(self):
        code = RotatedSurfaceCode(5)
        coverage = (
            code.x_check_matrix.sum(axis=0)
            + code.z_check_matrix.sum(axis=0)
        )
        assert (coverage >= 2).all()  # bulk qubits see >= 2 checks
