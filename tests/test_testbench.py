"""Tests for the test-bench environment (paper section 4.2.4)."""

import pytest

from repro.qpdo import (
    BellStateHistoTb,
    GateSupportTb,
    PauliFrameLayer,
    StabilizerCore,
    StateVectorCore,
    TestBench,
)


class _CountingBench(TestBench):
    """Minimal bench used to exercise the base-class control flow."""

    def __init__(self, stack, iterations):
        super().__init__(stack, iterations)
        self.initialized = 0
        self.shut_down = 0

    def initialize(self):
        self.initialized += 1

    def single_test(self):
        return 42

    def shutdown(self):
        self.shut_down += 1


class TestBaseBench:
    def test_run_loops_and_collects(self):
        bench = _CountingBench(StabilizerCore(seed=0), iterations=5)
        outcomes = bench.run()
        assert outcomes == [42] * 5
        assert bench.initialized == 1
        assert bench.shut_down == 1

    def test_shutdown_called_on_failure(self):
        class Exploding(_CountingBench):
            def single_test(self):
                raise RuntimeError("boom")

        bench = Exploding(StabilizerCore(seed=0), iterations=3)
        with pytest.raises(RuntimeError):
            bench.run()
        assert bench.shut_down == 1


class TestBellStateHistoTb:
    @pytest.mark.parametrize("core_cls", [StabilizerCore, StateVectorCore])
    def test_histogram_only_correlated_outcomes(self, core_cls):
        bench = BellStateHistoTb(core_cls(seed=6), iterations=100)
        bench.run()
        assert set(bench.histogram) <= {"00", "11"}
        assert sum(bench.histogram.values()) == 100
        # Both outcomes should occur in 100 fair shots.
        assert len(bench.histogram) == 2

    def test_with_pauli_frame_layer(self):
        stack = PauliFrameLayer(StabilizerCore(seed=8))
        bench = BellStateHistoTb(stack, iterations=50)
        bench.run()
        assert set(bench.histogram) <= {"00", "11"}


class TestGateSupportTb:
    def test_statevector_supports_everything(self):
        bench = GateSupportTb(StateVectorCore(seed=0))
        bench.run()
        assert all(r.supported and r.correct for r in bench.reports)
        assert "ok" in bench.format_report()

    def test_stabilizer_rejects_t_gates(self):
        bench = GateSupportTb(StabilizerCore(seed=0))
        bench.run()
        by_gate = {r.gate: r for r in bench.reports}
        assert not by_gate["t"].supported
        assert not by_gate["tdg"].supported
        clifford = [
            r
            for r in bench.reports
            if r.gate not in ("t", "tdg")
        ]
        assert all(r.supported and r.correct for r in clifford)
        assert "UNSUPPORTED" in bench.format_report()

    def test_pauli_frame_stack_passes_gate_support(self):
        """The frame must be observationally invisible to the probes."""
        bench = GateSupportTb(PauliFrameLayer(StateVectorCore(seed=0)))
        bench.run()
        assert all(r.supported and r.correct for r in bench.reports), (
            bench.format_report()
        )


class TestRandomCircuitTb:
    def test_reports_all_match(self):
        from repro.qpdo import RandomCircuitTb

        bench = RandomCircuitTb(
            iterations=3, num_qubits=4, num_gates=30, seed=6
        )
        outcomes = bench.run()
        assert outcomes == [True]
        assert bench.report is not None
        assert bench.report.iterations == 3
