"""Tests for the Steane [[7,1,3]] code and its QPDO layer."""

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.codes.steane import (
    HAMMING_CHECK_MATRIX,
    SteaneLayer,
    logical_result_from_bits,
    logical_x,
    logical_z,
    serialized_esm,
    stabilizer_paulis,
)
from repro.qpdo import PauliFrameLayer, StabilizerCore, StateVectorCore


class TestCodeData:
    def test_six_stabilizers(self):
        stabilizers = stabilizer_paulis()
        assert len(stabilizers) == 6

    def test_stabilizers_commute(self):
        stabilizers = stabilizer_paulis()
        for i, a in enumerate(stabilizers):
            for b in stabilizers[i + 1 :]:
                assert a.commutes_with(b)

    def test_logicals(self):
        xl, zl = logical_x(), logical_z()
        for stabilizer in stabilizer_paulis():
            assert xl.commutes_with(stabilizer)
            assert zl.commutes_with(stabilizer)
        assert not xl.commutes_with(zl)

    def test_hamming_matrix_full_rank(self):
        # All 8 syndromes reachable -> rows independent over GF(2).
        from repro.decoders import build_lut

        assert len(build_lut(HAMMING_CHECK_MATRIX)) == 8

    def test_logical_result_parity(self):
        assert logical_result_from_bits([0] * 7) == 0
        assert logical_result_from_bits([1] * 7) == 1
        with pytest.raises(ValueError):
            logical_result_from_bits([0] * 5)

    def test_serialized_esm_structure(self):
        esm = serialized_esm(list(range(7)), shared_ancilla=7)
        assert len(esm.x_measurements) == 3
        assert len(esm.z_measurements) == 3


class TestSteaneLayer:
    def test_init_measure_zero(self):
        layer = SteaneLayer(StabilizerCore(seed=1))
        layer.createqubit(1)
        circuit = Circuit()
        circuit.add("prep_z", 0)
        measure = circuit.add("measure", 0)
        result = layer.run(circuit)
        assert result.result_of(measure) == 0

    def test_xl_flips(self):
        layer = SteaneLayer(StabilizerCore(seed=1))
        layer.createqubit(1)
        circuit = Circuit()
        circuit.add("prep_z", 0)
        circuit.add("x", 0)
        measure = circuit.add("measure", 0)
        assert layer.run(circuit).result_of(measure) == 1

    def test_hadamard_double_application(self):
        layer = SteaneLayer(StabilizerCore(seed=2))
        layer.createqubit(1)
        circuit = Circuit()
        circuit.add("prep_z", 0)
        circuit.add("x", 0)
        circuit.add("h", 0)
        circuit.add("h", 0)
        measure = circuit.add("measure", 0)
        assert layer.run(circuit).result_of(measure) == 1

    def test_s_sdg_cancel(self):
        layer = SteaneLayer(StateVectorCore(seed=3))
        layer.createqubit(1)
        circuit = Circuit()
        circuit.add("prep_z", 0)
        circuit.add("x", 0)
        circuit.add("s", 0)
        circuit.add("sdg", 0)
        measure = circuit.add("measure", 0)
        assert layer.run(circuit).result_of(measure) == 1

    def test_cnot_truth_table(self):
        for control_bit, target_bit in [(0, 0), (0, 1), (1, 0), (1, 1)]:
            layer = SteaneLayer(
                StabilizerCore(seed=10 + control_bit * 2 + target_bit)
            )
            layer.createqubit(2)
            circuit = Circuit()
            circuit.add("prep_z", 0)
            circuit.add("prep_z", 1)
            if control_bit:
                circuit.add("x", 0)
            if target_bit:
                circuit.add("x", 1)
            circuit.add("cnot", 0, 1)
            m0 = circuit.add("measure", 0)
            m1 = circuit.add("measure", 1)
            result = layer.run(circuit)
            assert result.result_of(m0) == control_bit
            assert result.result_of(m1) == control_bit ^ target_bit

    def test_bell_correlations_under_pauli_frame(self):
        outcomes = set()
        for seed in range(25):
            layer = SteaneLayer(
                PauliFrameLayer(StabilizerCore(seed=seed))
            )
            layer.createqubit(2)
            circuit = Circuit()
            circuit.add("prep_z", 0)
            circuit.add("prep_z", 1)
            circuit.add("h", 0)
            circuit.add("cnot", 0, 1)
            m0 = circuit.add("measure", 0)
            m1 = circuit.add("measure", 1)
            result = layer.run(circuit)
            pair = (result.result_of(m0), result.result_of(m1))
            assert pair[0] == pair[1]
            outcomes.add(pair)
        assert outcomes == {(0, 0), (1, 1)}

    def test_stabilizers_hold_after_init(self):
        core = StabilizerCore(seed=5)
        layer = SteaneLayer(core)
        layer.createqubit(1)
        circuit = Circuit()
        circuit.add("prep_z", 0)
        layer.run(circuit)
        data = layer.logical_qubits[0].data_qubits
        sim = core.simulator
        from repro.paulis import PauliString

        for row in HAMMING_CHECK_MATRIX:
            support = [data[int(q)] for q in np.flatnonzero(row)]
            x_stab = PauliString.from_support(
                sim.num_qubits, x_support=support
            )
            z_stab = PauliString.from_support(
                sim.num_qubits, z_support=support
            )
            assert sim.expectation(x_stab) == 1
            assert sim.expectation(z_stab) == 1

    def test_unsupported_gate_rejected(self):
        layer = SteaneLayer(StateVectorCore(seed=0))
        layer.createqubit(1)
        circuit = Circuit()
        circuit.add("t", 0)
        with pytest.raises(ValueError):
            layer.add(circuit)

    def test_removequbit(self):
        layer = SteaneLayer(StabilizerCore(seed=0))
        layer.createqubit(2)
        layer.removequbit(1)
        assert layer.num_qubits == 1
