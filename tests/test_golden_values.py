"""Golden-value regression tests: exact pinned SC17 streams and counts.

Every number in this module was produced by the committed RNG-stream
scheme (seed-sequence trees, one stream per random instruction, shard
seeds ``(arm_seed, shard_index)``).  Any change to stream layout,
kernel update order, noise-channel draw shape or shard seeding will
shift these bits and fail loudly here — which is the point: silent
stream changes would otherwise masquerade as statistical noise while
breaking reproducibility of published sweep data.

If a change to the sampling machinery is *intentional*, regenerate
the constants (each test's body shows exactly how) and say so in the
commit message.
"""

import hashlib

from repro.codes.surface17.esm import parallel_esm
from repro.experiments.ler import BatchedLerExperiment
from repro.experiments.parallel import (
    ParallelConfig,
    run_parallel_sweep,
)
from repro.sim import (
    NoiseParameters,
    sample_circuit,
    sample_circuit_packed,
)

import pytest

#: Raw measurement streams of one noisy SC17 ESM round, 4 shots
#: (8 ancilla readouts per shot, circuit measurement order).
GOLDEN_SYNDROME_STREAMS = {
    (11, 2e-3): ["10110000", "10100000", "11000000", "10100010"],
    (23, 8e-3): ["00101000", "10110000", "11010000", "10010000"],
}

#: Per-shot (logical_errors, clean_windows, corrections) of a
#: 6-shot x 10-window batched LER run, both arms.
GOLDEN_LER_COUNTS = {
    (11, 2e-3, False): (
        [0, 0, 0, 1, 0, 0],
        [8, 6, 8, 7, 6, 9],
        [1, 4, 2, 3, 4, 2],
    ),
    (11, 2e-3, True): (
        [1, 0, 1, 0, 0, 0],
        [7, 7, 7, 9, 8, 7],
        [3, 3, 3, 2, 2, 2],
    ),
    (23, 8e-3, False): (
        [1, 1, 0, 0, 1, 1],
        [4, 3, 5, 5, 5, 6],
        [7, 7, 8, 6, 8, 7],
    ),
    (23, 8e-3, True): (
        [0, 1, 0, 1, 2, 0],
        [4, 3, 5, 4, 4, 4],
        [9, 7, 7, 7, 8, 7],
    ),
}

#: SHA-256 over the committed shard records (sorted arms, shard
#: order) of a 4-shot x 6-window parallel sweep, plus pooled totals.
GOLDEN_PARALLEL = {
    (11, 2e-3): (
        "87e7ce0b57b90e4c3f79f867dfe3438c95a4b7491a78e7d1fc75f038449d6c9a",
        {(0, False): (1, 24), (0, True): (1, 24)},
    ),
    (23, 8e-3): (
        "735d5d9fbc08f8bf642efb06b8048b024959a685f3b29fd7bb78d2067a7e0469",
        {(0, False): (2, 24), (0, True): (0, 24)},
    ),
}

#: Per-shot counts of the same runs under ``engine="packed-fast"``.
#: The fast mode draws word-level noise from its own stream, so its
#: bits legitimately differ from GOLDEN_LER_COUNTS — but they are
#: still a pure function of the seed, which these constants pin.
GOLDEN_LER_COUNTS_PACKED_FAST = {
    (11, 2e-3, False): (
        [0, 0, 0, 0, 0, 0],
        [8, 7, 9, 7, 8, 8],
        [2, 3, 1, 4, 3, 2],
    ),
    (11, 2e-3, True): (
        [0, 0, 0, 1, 0, 0],
        [8, 7, 8, 9, 9, 9],
        [2, 2, 4, 1, 1, 1],
    ),
    (23, 8e-3, False): (
        [1, 0, 1, 1, 0, 1],
        [5, 3, 3, 2, 5, 4],
        [6, 8, 7, 8, 8, 8],
    ),
    (23, 8e-3, True): (
        [2, 1, 1, 1, 0, 2],
        [4, 7, 3, 3, 7, 5],
        [8, 4, 9, 9, 6, 7],
    ),
}

SEED_PER_CASES = [(11, 2e-3), (23, 8e-3)]


@pytest.mark.parametrize(
    "sampler", [sample_circuit, sample_circuit_packed]
)
@pytest.mark.parametrize("seed,per", SEED_PER_CASES)
def test_golden_syndrome_stream(seed, per, sampler):
    """Exact ancilla readout bits of one noisy SC17 ESM round.

    The packed sampler replays the same per-instruction streams, so
    it must reproduce the very same pinned bits.
    """
    esm = parallel_esm(list(range(17)), name="esm")
    samples = sampler(
        esm.circuit,
        4,
        seed=seed,
        noise=NoiseParameters(per, active_qubits=range(17)),
    )
    rows = [
        "".join("1" if bit else "0" for bit in row) for row in samples
    ]
    assert rows == GOLDEN_SYNDROME_STREAMS[(seed, per)]


@pytest.mark.parametrize("engine", ["framesim", "packed"])
@pytest.mark.parametrize("seed,per", SEED_PER_CASES)
@pytest.mark.parametrize("use_frame", [False, True])
def test_golden_ler_counts(seed, per, use_frame, engine):
    """Exact per-shot LER counts of a small batched SC17 run.

    ``engine="packed"`` must hit the same pinned constants bit for
    bit — that is its conformance contract.
    """
    counts = BatchedLerExperiment(
        per,
        num_shots=6,
        use_pauli_frame=use_frame,
        windows=10,
        seed=seed,
        engine=engine,
    ).run_counts()
    errors, clean, corrections = GOLDEN_LER_COUNTS[
        (seed, per, use_frame)
    ]
    assert counts.logical_errors.tolist() == errors
    assert counts.clean_windows.tolist() == clean
    assert counts.corrections_commanded.tolist() == corrections


@pytest.mark.parametrize("seed,per", SEED_PER_CASES)
@pytest.mark.parametrize("use_frame", [False, True])
def test_golden_ler_counts_packed_fast(seed, per, use_frame):
    """Exact per-shot counts of the packed-fast engine's own stream."""
    counts = BatchedLerExperiment(
        per,
        num_shots=6,
        use_pauli_frame=use_frame,
        windows=10,
        seed=seed,
        engine="packed-fast",
    ).run_counts()
    errors, clean, corrections = GOLDEN_LER_COUNTS_PACKED_FAST[
        (seed, per, use_frame)
    ]
    assert counts.logical_errors.tolist() == errors
    assert counts.clean_windows.tolist() == clean
    assert counts.corrections_commanded.tolist() == corrections


@pytest.mark.parametrize("engine", ["framesim", "packed"])
@pytest.mark.parametrize("seed,per", SEED_PER_CASES)
def test_golden_parallel_shard_records(seed, per, engine):
    """Exact digest of the parallel engine's committed shard records."""
    report = run_parallel_sweep(
        [per],
        shots=4,
        windows=6,
        seed=seed,
        config=ParallelConfig(workers=1, shard_shots=2),
        engine=engine,
    )
    blob = "\n".join(
        record.to_json()
        for arm_key in sorted(report.arms)
        for record in report.arms[arm_key].committed
    )
    digest = hashlib.sha256(blob.encode()).hexdigest()
    expected_digest, expected_totals = GOLDEN_PARALLEL[(seed, per)]
    assert digest == expected_digest
    totals = {
        arm_key: (aggregator.errors, aggregator.windows)
        for arm_key, aggregator in report.arms.items()
    }
    assert totals == expected_totals
