"""Differential fuzzing across the three simulator implementations.

Random small Clifford circuits with random injected Pauli noise run
through (a) the batched Pauli-frame sampler, (b) the per-shot tableau
loop and, at <= 6 qubits, (c) exact branch enumeration on the dense
state-vector simulator.  All three must describe the same physics:

* every sampled outcome lies inside the exact support,
* batched samples match the exact distribution (chi-square),
* batched and per-shot samples are homogeneous (chi-square),
* under depolarizing noise, the batched built-in channel matches the
  per-shot ``DepolarizingErrorLayer`` loop (chi-square).

The corpus below is fixed and seeded, so the default run is fully
deterministic.  ``pytest --fuzz-iters N`` appends ``N`` extra
deterministic seeds per test for deeper local fuzzing (the seeds are
still fixed — iteration ``i`` always uses seed ``FUZZ_SEED_BASE + i``
— so a failure reproduces by rerunning with the same ``N``).
"""

import numpy as np
import pytest
from scipy import stats

from repro.circuits import Circuit
from repro.circuits.operation import Operation
from repro.qpdo import DepolarizingErrorLayer, StabilizerCore
from repro.sim import NoiseParameters, sample_circuit

from .test_framesim_equivalence import (
    P_VALUE_FLOOR,
    exact_distribution,
    outcome_counts,
    random_measured_circuit,
    tableau_shot_loop,
)

#: Seeded corpus of the default (CI) run.
CORPUS_SEEDS = (1301, 1302, 1303, 1304, 1305, 1306)
#: Extra --fuzz-iters seeds start here (deterministic, reproducible).
FUZZ_SEED_BASE = 90_000

#: Per-gate probability of injecting a random Pauli error op.
ERROR_PROBABILITY = 0.15


def pytest_generate_tests(metafunc):
    """Parametrize ``fuzz_seed`` with the corpus plus --fuzz-iters."""
    if "fuzz_seed" in metafunc.fixturenames:
        iters = metafunc.config.getoption("--fuzz-iters")
        seeds = list(CORPUS_SEEDS) + [
            FUZZ_SEED_BASE + i for i in range(iters)
        ]
        metafunc.parametrize("fuzz_seed", seeds)


def random_noisy_circuit(
    num_qubits: int, num_gates: int, rng: np.random.Generator
) -> Circuit:
    """Random Clifford circuit + interleaved random Pauli error ops.

    The injected errors are flagged ``is_error`` — exactly how the
    QPDO error layer marks physical faults — and are deterministic
    (shared by every shot), so the exact enumerator, the tableau loop
    and the frame sampler all see the same channel.
    """
    base = random_measured_circuit(num_qubits, num_gates, rng)
    noisy = Circuit("fuzz")
    for operation in base.operations():
        noisy.append(operation)
        if rng.random() < ERROR_PROBABILITY:
            pauli = ("x", "y", "z")[int(rng.integers(3))]
            victim = int(rng.integers(num_qubits))
            noisy.append(
                Operation(pauli, (victim,), is_error=True)
            )
    return noisy


def _chisquare_against_exact(samples, expected, shots, context):
    """Chi-square of sampled outcome counts against exact weights."""
    observed = outcome_counts(samples)
    support = set(expected)
    assert set(observed) <= support, context
    keys = sorted(support)
    f_exp = np.array([expected[k] * shots for k in keys])
    f_obs = np.array([observed.get(k, 0) for k in keys])
    big = f_exp >= 5.0
    f_exp = np.append(f_exp[big], f_exp[~big].sum())
    f_obs = np.append(f_obs[big], f_obs[~big].sum())
    if f_exp[-1] == 0.0:
        f_exp, f_obs = f_exp[:-1], f_obs[:-1]
    if len(f_exp) < 2:
        assert f_obs.sum() == shots
        return
    result = stats.chisquare(f_obs, f_exp * shots / f_exp.sum())
    assert result.pvalue > P_VALUE_FLOOR, (context, result.pvalue)


def _chisquare_homogeneity(a, b, context):
    """Chi-square homogeneity of two sample sets."""
    counts_a = outcome_counts(a)
    counts_b = outcome_counts(b)
    keys = sorted(set(counts_a) | set(counts_b))
    table = np.array(
        [
            [counts_a.get(k, 0) for k in keys],
            [counts_b.get(k, 0) for k in keys],
        ]
    )
    expected = stats.contingency.expected_freq(table)
    rare = expected.min(axis=0) < 5.0
    if rare.any() and (~rare).any():
        table = np.concatenate(
            [
                table[:, ~rare],
                table[:, rare].sum(axis=1, keepdims=True),
            ],
            axis=1,
        )
    if table.shape[1] < 2:
        return
    result = stats.chi2_contingency(table)
    assert result.pvalue > P_VALUE_FLOOR, (context, result.pvalue)


class TestFuzzThreeWayAgreement:
    """Batched sampler vs tableau loop vs exact enumeration."""

    def _make_case(self, fuzz_seed):
        rng = np.random.default_rng(fuzz_seed)
        num_qubits = int(rng.integers(2, 6))
        num_gates = int(rng.integers(6, 15))
        circuit = random_noisy_circuit(num_qubits, num_gates, rng)
        return circuit, num_qubits

    def test_batched_matches_exact_distribution(self, fuzz_seed):
        circuit, num_qubits = self._make_case(fuzz_seed)
        expected = exact_distribution(circuit, num_qubits)
        shots = 2000
        samples = sample_circuit(
            circuit, shots, seed=fuzz_seed + 1, num_qubits=num_qubits
        )
        _chisquare_against_exact(
            samples, expected, shots, context=fuzz_seed
        )

    def test_tableau_loop_matches_exact_distribution(self, fuzz_seed):
        circuit, num_qubits = self._make_case(fuzz_seed)
        expected = exact_distribution(circuit, num_qubits)
        shots = 2000
        samples = tableau_shot_loop(
            circuit, num_qubits, shots, seed=fuzz_seed + 2
        )
        _chisquare_against_exact(
            samples, expected, shots, context=fuzz_seed
        )

    def test_batched_and_tableau_loop_homogeneous(self, fuzz_seed):
        circuit, num_qubits = self._make_case(fuzz_seed)
        shots = 1500
        batched = sample_circuit(
            circuit, shots, seed=fuzz_seed + 3, num_qubits=num_qubits
        )
        loop = tableau_shot_loop(
            circuit, num_qubits, shots, seed=fuzz_seed + 4
        )
        _chisquare_homogeneity(batched, loop, context=fuzz_seed)


class TestFuzzDepolarizingChannel:
    """Batched built-in noise vs per-shot error-layer loops on random
    circuits (statistical, since the channel is stochastic)."""

    @pytest.mark.parametrize("seed", [2401, 2402])
    def test_noisy_distributions_agree(self, seed):
        probability = 0.06
        rng = np.random.default_rng(seed)
        num_qubits = int(rng.integers(2, 4))
        circuit = random_measured_circuit(
            num_qubits, int(rng.integers(6, 12)), rng
        )
        shots = 1200
        loop_rng = np.random.default_rng(seed + 5)
        measures = [
            op for op in circuit.operations() if op.is_measurement
        ]
        loop_rows = []
        for _ in range(shots):
            core = StabilizerCore(rng=loop_rng)
            stack = DepolarizingErrorLayer(
                core, probability=probability, rng=loop_rng
            )
            stack.createqubit(num_qubits)
            result = stack.run(circuit.copy(fresh_uids=False))
            loop_rows.append([result.result_of(m) for m in measures])
        loop = np.array(loop_rows, dtype=bool)
        batched = sample_circuit(
            circuit,
            shots,
            seed=seed + 6,
            noise=NoiseParameters(probability),
            num_qubits=num_qubits,
        )
        _chisquare_homogeneity(loop, batched, context=seed)
