"""Unit suite of the decoder registry (names, capabilities, parsing).

The registry (:mod:`repro.decoders.registry`) is the single decoder
selection point of the experiment stack: canonical names, deprecated
aliases, capability negotiation against simulation cores, and the
``--decoder name:key=value`` CLI argument grammar all live there.
"""

import warnings

import pytest

from repro.codes.rotated import RotatedSurfaceCode
from repro.decoders import boundary_qubits_for
from repro.decoders.registry import (
    CAP_EXACT,
    CAP_PACKED_SYNDROMES,
    CAP_SPACETIME,
    CAP_SPARSE,
    CAP_WINDOWED,
    CapabilityError,
    DecoderRegistryError,
    DuplicateDecoderError,
    RegisteredDecoder,
    UnknownDecoderError,
    WindowContext,
    format_decoder_arg,
    get_decoder,
    list_decoders,
    negotiate,
    parse_decoder_arg,
    register_decoder,
    resolve_decoder_name,
    unregister_decoder,
)
from repro.qpdo.core import UnsupportedFeatureError


class TestCatalogue:
    def test_builtins_present(self):
        names = [spec.name for spec in list_decoders()]
        assert names == sorted(names)
        for expected in (
            "lut",
            "per-shot-lut",
            "mwpm",
            "unionfind",
            "sparse-mwpm",
        ):
            assert expected in names

    def test_capability_flags(self):
        assert CAP_EXACT in get_decoder("lut").capabilities
        assert CAP_EXACT in get_decoder("mwpm").capabilities
        for sparse_name in ("unionfind", "sparse-mwpm"):
            spec = get_decoder(sparse_name)
            assert CAP_SPARSE in spec.capabilities
            assert CAP_SPACETIME in spec.capabilities
        assert CAP_SPACETIME not in get_decoder("lut").capabilities

    def test_describe_is_json_ready(self):
        description = get_decoder("unionfind").describe()
        assert description["name"] == "unionfind"
        assert description["capabilities"] == sorted(
            description["capabilities"]
        )
        assert "time_weight" in description["params"]

    def test_unknown_name_raises(self):
        with pytest.raises(UnknownDecoderError):
            get_decoder("quantum")

    def test_aliases_resolve_with_deprecation(self):
        with pytest.warns(DeprecationWarning):
            assert resolve_decoder_name("batched") == "lut"
        with pytest.warns(DeprecationWarning):
            assert resolve_decoder_name("per-shot") == "per-shot-lut"

    def test_canonical_names_resolve_silently(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_decoder_name("lut") == "lut"
            assert resolve_decoder_name("unionfind") == "unionfind"


class TestRegistration:
    def _spec(self, name, aliases=()):
        return RegisteredDecoder(
            name=name,
            summary="test decoder",
            capabilities=frozenset((CAP_WINDOWED,)),
            aliases=tuple(aliases),
        )

    def test_register_and_unregister(self):
        register_decoder(self._spec("test-dec", aliases=("td",)))
        try:
            assert get_decoder("td").name == "test-dec"
        finally:
            unregister_decoder("test-dec")
        with pytest.raises(UnknownDecoderError):
            get_decoder("test-dec")
        with pytest.raises(UnknownDecoderError):
            get_decoder("td")

    def test_duplicate_name_rejected(self):
        with pytest.raises(DuplicateDecoderError):
            register_decoder(self._spec("lut"))

    def test_duplicate_alias_rejected(self):
        with pytest.raises(DuplicateDecoderError):
            register_decoder(self._spec("fresh", aliases=("batched",)))

    def test_unregister_unknown_raises(self):
        with pytest.raises(UnknownDecoderError):
            unregister_decoder("never-registered")


class TestCapabilityRefusal:
    def test_lut_refuses_spacetime_build(self):
        code = RotatedSurfaceCode(3)
        with pytest.raises(CapabilityError):
            get_decoder("lut").build_spacetime(
                code.z_check_matrix, boundary_qubits_for(code, "z")
            )

    def test_windowed_build_requires_context(self):
        with pytest.raises(CapabilityError):
            get_decoder("lut").build(RotatedSurfaceCode(3), None)

    def test_windowed_build_rejects_params(self):
        code = RotatedSurfaceCode(3)
        window = WindowContext(
            code.x_check_matrix, code.z_check_matrix, code=code
        )
        with pytest.raises(CapabilityError):
            get_decoder("lut").build(code, window, time_weight=2)

    def test_unknown_graph_param_rejected(self):
        code = RotatedSurfaceCode(3)
        with pytest.raises(CapabilityError):
            get_decoder("unionfind").build_spacetime(
                code.z_check_matrix,
                boundary_qubits_for(code, "z"),
                growth_rate=3,
            )

    def test_negotiate_packed_core(self):
        from repro.qpdo.packed_core import PackedStabilizerCore

        core = PackedStabilizerCore(num_shots=2, seed=0)
        for name in ("lut", "unionfind", "sparse-mwpm"):
            assert CAP_PACKED_SYNDROMES in get_decoder(
                name
            ).capabilities
            negotiate(get_decoder(name), core=core)
        hobbled = RegisteredDecoder(
            name="no-packed",
            summary="cannot consume word planes",
            capabilities=frozenset((CAP_WINDOWED,)),
        )
        with pytest.raises(UnsupportedFeatureError):
            negotiate(hobbled, core=core)


class TestArgumentGrammar:
    def test_bare_name(self):
        assert parse_decoder_arg("unionfind") == ("unionfind", {})

    def test_params_coerce(self):
        name, params = parse_decoder_arg(
            "mwpm:time_weight=2.5,verbose=true,depth=3,tag=x"
        )
        assert name == "mwpm"
        assert params == {
            "time_weight": 2.5,
            "verbose": True,
            "depth": 3,
            "tag": "x",
        }

    @pytest.mark.parametrize(
        "value", ["", ":k=v", "name:novalue", "name:=3", "name:,"]
    )
    def test_malformed_rejected(self, value):
        with pytest.raises(DecoderRegistryError):
            parse_decoder_arg(value)

    def test_format_round_trips(self):
        for value in ("lut", "unionfind:time_weight=2.5"):
            name, params = parse_decoder_arg(value)
            assert format_decoder_arg(name, params) == value

    def test_format_sorts_params(self):
        assert (
            format_decoder_arg("mwpm", {"b": 1, "a": 2})
            == "mwpm:a=2,b=1"
        )


class TestExperimentWiring:
    def test_space_builders_produce_working_decoders(self):
        import numpy as np

        from repro.decoders import syndrome_of

        code = RotatedSurfaceCode(3)
        boundary = boundary_qubits_for(code, "z")
        for name in ("mwpm", "unionfind", "sparse-mwpm"):
            decoder = get_decoder(name).build_space(
                code.z_check_matrix, boundary
            )
            error = np.zeros(code.num_data, dtype=np.uint8)
            error[0] = 1
            syndrome = syndrome_of(code.z_check_matrix, error)
            residual = error.astype(bool) ^ decoder.decode(syndrome)
            assert not syndrome_of(
                code.z_check_matrix, residual.astype(np.uint8)
            ).any()

    def test_spacetime_builder_accepts_time_weight(self):
        code = RotatedSurfaceCode(3)
        decoder = get_decoder("unionfind").build_spacetime(
            code.z_check_matrix,
            boundary_qubits_for(code, "z"),
            time_weight=2.0,
        )
        assert decoder.time_weight == 2.0
