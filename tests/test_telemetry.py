"""Tests for the telemetry subsystem (spans, counters, sinks)."""

import json
import time
import timeit

import pytest

from repro import telemetry
from repro.telemetry import (
    JsonLinesSink,
    MemorySink,
    TelemetryCollector,
    aggregate_trace,
    load_trace,
)


class TestSpans:
    def test_span_totals_aggregate_calls_and_time(self):
        collector = TelemetryCollector()
        for _ in range(3):
            with collector.span("cat", "op"):
                pass
        calls, seconds = collector.span_totals[("cat", "op")]
        assert calls == 3
        assert seconds >= 0.0

    def test_span_nesting_depth_recorded(self):
        sink = MemorySink()
        collector = TelemetryCollector([sink])
        with collector.span("outer", "a"):
            with collector.span("inner", "b"):
                pass
        begins = sink.of_type("span_begin")
        ends = sink.of_type("span_end")
        assert [(r["category"], r["depth"]) for r in begins] == [
            ("outer", 0),
            ("inner", 1),
        ]
        # Ends pop inner-first, at the depth of the enclosing region.
        assert [(r["category"], r["depth"]) for r in ends] == [
            ("inner", 1),
            ("outer", 0),
        ]
        assert all(r["duration"] >= 0.0 for r in ends)

    def test_span_meta_travels_in_begin_record(self):
        sink = MemorySink()
        collector = TelemetryCollector([sink])
        with collector.span("cat", "op", shots=7, arm=True):
            pass
        (begin,) = sink.of_type("span_begin")
        assert begin["meta"] == {"shots": 7, "arm": True}


class TestCounters:
    def test_count_aggregates_fields_per_key(self):
        collector = TelemetryCollector()
        collector.count("sim", "apply_gate", field="h", amount=2)
        collector.count("sim", "apply_gate", field="h", amount=3)
        collector.count("sim", "apply_gate", field="cnot")
        collector.count("decoder", "decode")
        assert collector.counters[("sim", "apply_gate")] == {
            "h": 5,
            "cnot": 1,
        }
        assert collector.counters[("decoder", "decode")] == {
            "count": 1
        }

    def test_flush_emits_one_record_per_key(self):
        sink = MemorySink()
        collector = TelemetryCollector([sink])
        collector.count("b", "y", amount=2)
        collector.count("a", "x")
        collector.flush()
        records = sink.of_type("counter")
        assert [(r["category"], r["name"]) for r in records] == [
            ("a", "x"),
            ("b", "y"),
        ]
        assert records[1]["fields"] == {"count": 2}

    def test_events_tally_and_emit(self):
        sink = MemorySink()
        collector = TelemetryCollector([sink])
        collector.event("parallel", "shard_commit", shard_index=0)
        collector.event("parallel", "shard_commit", shard_index=1)
        assert collector.event_totals[
            ("parallel", "shard_commit")
        ] == 2
        assert len(sink.of_type("event")) == 2


class TestSinks:
    def test_jsonl_round_trip_through_report(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        collector = TelemetryCollector([JsonLinesSink(path)])
        with collector.span("sim", "run", shots=2):
            with collector.span("decoder", "decode"):
                pass
        collector.event("parallel", "dispatch")
        collector.count("sim", "gates", field="h", amount=4)
        collector.close()

        aggregate = aggregate_trace(load_trace(path))
        assert aggregate.spans[("sim", "run")][0] == 1
        assert aggregate.spans[("decoder", "decode")][0] == 1
        assert aggregate.events[("parallel", "dispatch")] == 1
        assert aggregate.counters[("sim", "gates")] == {"h": 4}
        # The saved totals match the live collector's aggregates.
        for key, (calls, seconds) in aggregate.spans.items():
            live_calls, live_seconds = collector.span_totals[key]
            assert calls == live_calls
            assert seconds == pytest.approx(live_seconds)

    def test_load_trace_tolerates_torn_final_line(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text(
            json.dumps({"type": "event", "category": "a", "name": "b"})
            + "\n"
            + '{"type": "event", "cat'  # interrupted write
        )
        records = load_trace(str(path))
        assert len(records) == 1

    def test_jsonl_sink_leaves_valid_empty_file(self, tmp_path):
        path = str(tmp_path / "empty.jsonl")
        sink = JsonLinesSink(path)
        sink.close()
        assert load_trace(path) == []

    def test_close_is_idempotent_and_flushes_counters(self):
        sink = MemorySink()
        collector = TelemetryCollector([sink])
        collector.count("a", "x")
        collector.close()
        collector.close()
        assert len(sink.of_type("counter")) == 1
        assert sink.closed


class TestEnableDisable:
    def test_disabled_by_default(self):
        assert telemetry.ACTIVE is None

    def test_enable_disable_round_trip(self):
        collector = telemetry.enable()
        try:
            assert telemetry.ACTIVE is collector
        finally:
            previous = telemetry.disable()
        assert previous is collector
        assert telemetry.ACTIVE is None

    def test_enabled_context_restores_previous(self):
        outer = TelemetryCollector()
        with telemetry.enabled(outer):
            with telemetry.enabled() as inner:
                assert telemetry.ACTIVE is inner
            assert telemetry.ACTIVE is outer
        assert telemetry.ACTIVE is None

    def test_summary_table_mentions_all_sections(self):
        collector = TelemetryCollector()
        with collector.span("sim", "run"):
            pass
        collector.count("sim", "gates")
        collector.event("parallel", "dispatch")
        table = collector.summary_table()
        assert "spans" in table
        assert "counters" in table
        assert "events" in table
        assert "sim/run" in table

    def test_summary_table_empty_collector(self):
        table = TelemetryCollector().summary_table()
        assert "no instrumented activity" in table


class TestInstrumentationIntegration:
    def test_batched_ler_emits_expected_categories(self):
        from repro.experiments.ler import BatchedLerExperiment

        with telemetry.enabled() as collector:
            BatchedLerExperiment(
                5e-3,
                num_shots=4,
                use_pauli_frame=True,
                windows=5,
                seed=1,
            ).run_counts()
        categories = {key[0] for key in collector.span_totals}
        assert "experiment" in categories
        assert "qpdo" in categories
        assert "sim.stabilizer" in categories
        assert "sim.framesim" in categories
        assert any(c.startswith("decoder.") for c in categories)

    def test_disabled_run_records_nothing(self):
        from repro.experiments.ler import BatchedLerExperiment

        probe = TelemetryCollector([MemorySink()])
        assert telemetry.ACTIVE is None
        BatchedLerExperiment(
            5e-3, num_shots=2, windows=3, seed=2
        ).run_counts()
        assert telemetry.ACTIVE is None
        assert probe.span_totals == {}


class TestDisabledOverhead:
    def test_disabled_overhead_under_five_percent(self):
        """The null-object fast path stays within the 5% budget.

        Strategy: run the 1k-shot batched LER workload with telemetry
        disabled and time it, then run the same workload instrumented
        to count how many telemetry touch points it executes.  The
        disabled cost of one touch point is a module attribute load
        plus an ``is None`` check; ``timeit`` measures that directly.
        The product (touch points x per-check cost) must stay well
        under 5% of the disabled runtime.
        """
        from repro.experiments.ler import BatchedLerExperiment

        def workload():
            return BatchedLerExperiment(
                5e-3,
                num_shots=1000,
                use_pauli_frame=True,
                windows=4,
                seed=5,
            ).run_counts()

        assert telemetry.ACTIVE is None
        start = time.perf_counter()
        workload()
        run_seconds = time.perf_counter() - start

        with telemetry.enabled() as collector:
            workload()
        touch_points = sum(
            calls for calls, _ in collector.span_totals.values()
        )
        touch_points += sum(collector.event_totals.values())
        # Counter sites tally many fields per call; bound generously.
        touch_points += sum(
            int(max(fields.values()))
            for fields in collector.counters.values()
        )

        per_check = (
            timeit.timeit(
                "t = telemetry.ACTIVE\n"
                "if t is not None:\n"
                "    raise AssertionError",
                setup="from repro import telemetry",
                number=10_000,
            )
            / 10_000
        )
        estimated_overhead = touch_points * per_check
        assert estimated_overhead < 0.05 * run_seconds, (
            f"{touch_points} touch points x {per_check:.2e}s "
            f"= {estimated_overhead:.4f}s vs run {run_seconds:.4f}s"
        )
