"""Tests for the MWPM (Blossom) decoder on rotated surface codes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes.rotated import RotatedSurfaceCode
from repro.decoders import MwpmDecoder, boundary_qubits_for, syndrome_of


@pytest.fixture(scope="module")
def code3():
    return RotatedSurfaceCode(3)


@pytest.fixture(scope="module")
def code5():
    return RotatedSurfaceCode(5)


def make_decoder(code):
    return MwpmDecoder(
        code.z_check_matrix, boundary_qubits_for(code, "z")
    )


class TestSingleErrors:
    @pytest.mark.parametrize("distance", [3, 5, 7])
    def test_every_single_x_error_corrected_up_to_stabilizer(
        self, distance
    ):
        code = RotatedSurfaceCode(distance)
        decoder = make_decoder(code)
        z_logical = np.zeros(code.num_data, dtype=np.uint8)
        for qubit in code.logical_z_support():
            z_logical[qubit] = 1
        for qubit in range(code.num_data):
            error = np.zeros(code.num_data, dtype=np.uint8)
            error[qubit] = 1
            syndrome = syndrome_of(code.z_check_matrix, error)
            correction = decoder.decode(syndrome)
            residual = error.astype(bool) ^ correction
            assert not syndrome_of(
                code.z_check_matrix, residual.astype(np.uint8)
            ).any()
            overlap = int((residual & z_logical.astype(bool)).sum())
            assert overlap % 2 == 0, f"logical residual for qubit {qubit}"

    def test_trivial_syndrome_no_correction(self, code5):
        decoder = make_decoder(code5)
        assert not decoder.decode(
            np.zeros(len(code5.z_plaquettes), dtype=int)
        ).any()


class TestWeightTwoErrors:
    def test_adjacent_pair_corrected(self, code5):
        decoder = make_decoder(code5)
        error = np.zeros(code5.num_data, dtype=np.uint8)
        error[code5.data_index(1, 1)] = 1
        error[code5.data_index(2, 1)] = 1
        syndrome = syndrome_of(code5.z_check_matrix, error)
        correction = decoder.decode(syndrome)
        residual = error.astype(bool) ^ correction
        assert not syndrome_of(
            code5.z_check_matrix, residual.astype(np.uint8)
        ).any()
        z_mask = np.zeros(code5.num_data, dtype=bool)
        for qubit in code5.logical_z_support():
            z_mask[qubit] = True
        assert int((residual & z_mask).sum()) % 2 == 0

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_correction_always_matches_syndrome(self, seed):
        """Property: decode() output always reproduces the syndrome."""
        code = RotatedSurfaceCode(5)
        decoder = make_decoder(code)
        rng = np.random.default_rng(seed)
        error = (rng.random(code.num_data) < 0.1).astype(np.uint8)
        syndrome = syndrome_of(code.z_check_matrix, error)
        correction = decoder.decode(syndrome)
        assert np.array_equal(
            syndrome_of(code.z_check_matrix, correction.astype(np.uint8)),
            syndrome,
        )

    def test_distance_minus_one_over_two_errors_never_logical(self, code5):
        """d=5 corrects any 2 X errors: residual never flips Z_L."""
        decoder = make_decoder(code5)
        z_mask = np.zeros(code5.num_data, dtype=bool)
        for qubit in code5.logical_z_support():
            z_mask[qubit] = True
        rng = np.random.default_rng(1)
        for _ in range(120):
            pair = rng.choice(code5.num_data, size=2, replace=False)
            error = np.zeros(code5.num_data, dtype=np.uint8)
            error[pair] = 1
            syndrome = syndrome_of(code5.z_check_matrix, error)
            correction = decoder.decode(syndrome)
            residual = error.astype(bool) ^ correction
            assert int((residual & z_mask).sum()) % 2 == 0, pair


class TestMatchingGraph:
    def test_distances_are_symmetric(self, code3):
        decoder = make_decoder(code3)
        graph = decoder.graph
        for a in range(graph.num_checks):
            for b in range(graph.num_checks):
                assert graph.distance(a, b) == graph.distance(b, a)

    def test_boundary_reachable_from_every_check(self, code3):
        decoder = make_decoder(code3)
        for check in range(decoder.graph.num_checks):
            assert decoder.graph.distance(check, -1) >= 1

    def test_correction_path_length_matches_distance(self, code5):
        decoder = make_decoder(code5)
        graph = decoder.graph
        for a in range(graph.num_checks):
            for b in range(a + 1, graph.num_checks):
                path = graph.correction_path(a, b)
                assert len(path) == graph.distance(a, b)
