"""Tests for the opt-in QPDO pre-flight wiring."""

import pytest

from repro import telemetry
from repro.analysis import (
    PreflightError,
    PreflightLayer,
    circuit_digest,
)
from repro.circuits.circuit import Circuit
from repro.qpdo.cores import StabilizerCore, StateVectorCore
from repro.qpdo.testbench import BellStateHistoTb


def _bell() -> Circuit:
    circuit = Circuit("bell")
    circuit.add("prep_z", 0)
    circuit.add("prep_z", 1)
    circuit.add("h", 0)
    circuit.add("cnot", 0, 1)
    circuit.add("measure", 0)
    circuit.add("measure", 1)
    return circuit


def _t_circuit() -> Circuit:
    circuit = Circuit("t-on-stabilizer")
    circuit.add("prep_z", 0)
    circuit.add("t", 0)
    circuit.add("measure", 0)
    return circuit


def test_preflight_layer_passes_clean_circuits_through():
    layer = PreflightLayer(StabilizerCore(seed=0))
    layer.createqubit(2)
    layer.add(_bell())
    result = layer.execute()
    assert len(result.measurements) == 2
    assert layer.circuits_seen == 1
    assert layer.circuits_verified == 1


def test_preflight_layer_rejects_capability_mismatch():
    layer = PreflightLayer(StabilizerCore(seed=0))
    layer.createqubit(1)
    with pytest.raises(PreflightError) as excinfo:
        layer.add(_t_circuit())
    analysis = excinfo.value.analysis
    assert not analysis.passed
    assert analysis.routing == "statevector"
    assert "CIR008" in str(excinfo.value)


def test_preflight_layer_accepts_t_on_statevector_core():
    layer = PreflightLayer(StateVectorCore(seed=0))
    layer.createqubit(1)
    layer.add(_t_circuit())
    result = layer.execute()
    assert len(result.measurements) == 1


def test_preflight_verifies_once_per_structure():
    layer = PreflightLayer(StabilizerCore(seed=0))
    layer.createqubit(2)
    for _ in range(5):
        layer.add(_bell())
        layer.execute()
    assert layer.circuits_seen == 5
    assert layer.circuits_verified == 1


def test_circuit_digest_ignores_name_but_not_structure():
    first, second = _bell(), _bell()
    second.name = "renamed"
    assert circuit_digest(first) == circuit_digest(second)
    second.add("x", 0)
    assert circuit_digest(first) != circuit_digest(second)


def test_frame_forbid_policy_rejects_flush_forcing_circuits():
    circuit = Circuit("t-fragment")
    circuit.add("t", 0)
    circuit.add("measure", 0)
    layer = PreflightLayer(
        StateVectorCore(seed=0), frame_policy="forbid"
    )
    layer.createqubit(1)
    with pytest.raises(PreflightError, match="CIR009"):
        layer.add(circuit)


def test_testbench_opt_in_preflight():
    bench = BellStateHistoTb(
        StabilizerCore(seed=7), iterations=4, preflight=True
    )
    bench.run()
    assert isinstance(bench.stack, PreflightLayer)
    assert bench.stack.circuits_verified >= 1
    assert bench.stack.circuits_seen >= bench.stack.circuits_verified
    assert sum(bench.histogram.values()) == 4
    assert set(bench.histogram) <= {"00", "11"}


def test_ler_experiment_opt_in_preflight():
    from repro.experiments.ler import LerExperiment

    experiment = LerExperiment(
        1e-2, use_pauli_frame=True, seed=1, preflight=True
    )
    analyses = experiment.preflight_analyses
    assert analyses is not None
    assert all(a.passed for a in analyses)
    assert all(a.routing == "stabilizer" for a in analyses)
    assert all(a.frame_safe for a in analyses)


def test_ler_experiment_preflight_off_by_default():
    from repro.experiments.ler import LerExperiment

    experiment = LerExperiment(1e-2, use_pauli_frame=True, seed=1)
    assert experiment.preflight_analyses is None


def test_batched_ler_experiment_opt_in_preflight():
    from repro.experiments.ler import BatchedLerExperiment

    experiment = BatchedLerExperiment(
        1e-2, 4, use_pauli_frame=True, seed=1, preflight=True
    )
    analyses = experiment.preflight_analyses
    assert analyses is not None
    assert all(a.passed for a in analyses)


def test_preflight_telemetry_counts():
    with telemetry.enabled() as collector:
        layer = PreflightLayer(StabilizerCore(seed=0))
        layer.createqubit(2)
        layer.add(_bell())
        layer.add(_bell())
        layer.execute()
    key = ("analysis", "preflight_verified")
    assert collector.counters[key]["count"] == 1
    assert "findings" in collector.counters[key]
