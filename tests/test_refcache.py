"""Tests for the process-level reference-trace cache (repro.sim.refcache).

The cache's contract: with a ``reference_key``, the first run of a
(structure, seed) records the noiseless reference trajectory, every
later run replays it without building a tableau, and replayed
experiments are bit-identical to cold ones — across every batched
engine, because the reference stream is engine-independent.
"""

import numpy as np
import pytest

from repro import telemetry
from repro.experiments.ler import BatchedLerExperiment
from repro.sim.refcache import (
    REFERENCE_CACHE_CAPACITY,
    ReferenceTableau,
    clear_reference_cache,
    lookup_reference_trace,
    reference_cache_size,
    reference_trace_key,
    store_reference_trace,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_reference_cache()
    yield
    clear_reference_cache()


def run_ler(engine, seed=11, reference_cache=True):
    experiment = BatchedLerExperiment(
        0.002,
        128,
        use_pauli_frame=True,
        windows=3,
        seed=seed,
        engine=engine,
        reference_cache=reference_cache,
    )
    result = experiment.run()
    return result, experiment.core.simulator.replaying


class TestReferenceTraceKey:
    def test_equivalent_seed_spellings_share_a_key(self):
        structure = ("batched_ler", "x", 3, 1, 2)
        assert reference_trace_key(structure, 7) == reference_trace_key(
            structure, np.random.SeedSequence(7)
        )

    def test_different_seeds_differ(self):
        structure = ("batched_ler", "x", 3, 1, 2)
        assert reference_trace_key(structure, 7) != reference_trace_key(
            structure, 8
        )

    def test_different_structures_differ(self):
        assert reference_trace_key(
            ("batched_ler", "x", 3, 1, 2), 7
        ) != reference_trace_key(("batched_ler", "z", 3, 1, 2), 7)


class TestCacheStore:
    def test_store_lookup_roundtrip(self):
        stored = store_reference_trace("k1", [1, 0, 1])
        found = lookup_reference_trace("k1")
        assert found is stored
        assert found.dtype == np.uint8
        assert list(found) == [1, 0, 1]

    def test_stored_traces_are_frozen(self):
        trace = store_reference_trace("k1", [1, 0])
        with pytest.raises(ValueError):
            trace[0] = 0

    def test_miss_returns_none(self):
        assert lookup_reference_trace("absent") is None

    def test_clear_reports_held_entries(self):
        store_reference_trace("k1", [1])
        store_reference_trace("k2", [0])
        assert reference_cache_size() == 2
        assert clear_reference_cache() == 2
        assert reference_cache_size() == 0

    def test_fifo_eviction_is_bounded(self):
        for index in range(REFERENCE_CACHE_CAPACITY + 5):
            store_reference_trace(f"k{index}", [index & 1])
        assert reference_cache_size() == REFERENCE_CACHE_CAPACITY
        assert lookup_reference_trace("k0") is None
        assert lookup_reference_trace("k4") is None
        assert lookup_reference_trace("k5") is not None

    def test_hit_miss_telemetry_counters(self):
        with telemetry.enabled() as collector:
            lookup_reference_trace("k")
            store_reference_trace("k", [1])
            lookup_reference_trace("k")
        counters = collector.counters[("sim.refcache", "reference_cache")]
        assert counters["misses"] == 1
        assert counters["hits"] == 1


class TestReferenceTableau:
    def test_live_mode_records_nothing(self):
        tableau = ReferenceTableau(np.random.default_rng(0), key=None)
        tableau.add_qubits(1)
        tableau.apply_gate("h", (0,))
        tableau.measure(0)
        tableau.commit()
        assert reference_cache_size() == 0

    def test_record_then_replay_same_bits(self):
        recorder = ReferenceTableau(np.random.default_rng(3), key="k")
        recorder.add_qubits(2)
        bits = []
        for _ in range(8):
            recorder.apply_gate("h", (0,))
            bits.append(recorder.measure(0))
        recorder.commit()

        replayer = ReferenceTableau(np.random.default_rng(999), key="k")
        assert replayer.replaying
        replayer.add_qubits(2)  # no-op, must not fail
        replayed = []
        for _ in range(8):
            replayer.apply_gate("h", (0,))
            replayed.append(replayer.measure(0))
        assert replayed == bits

    def test_replay_exhaustion_raises(self):
        store_reference_trace("k", [1])
        replayer = ReferenceTableau(np.random.default_rng(0), key="k")
        assert replayer.measure(0) == 1
        with pytest.raises(RuntimeError, match="trace exhausted"):
            replayer.measure(0)

    def test_commit_after_replay_is_noop(self):
        store_reference_trace("k", [1, 0])
        replayer = ReferenceTableau(np.random.default_rng(0), key="k")
        replayer.measure(0)
        replayer.commit()
        assert list(lookup_reference_trace("k")) == [1, 0]


class TestExperimentIntegration:
    def test_warm_run_is_bit_identical(self):
        cold, cold_replaying = run_ler("framesim")
        warm, warm_replaying = run_ler("framesim")
        assert not cold_replaying
        assert warm_replaying
        assert [r.to_json_dict() for r in cold] == [
            r.to_json_dict() for r in warm
        ]

    def test_trace_is_shared_across_engines(self):
        cold, _ = run_ler("framesim")
        for engine in ("packed", "packed-fast"):
            warm, replaying = run_ler(engine)
            assert replaying, engine
        packed, _ = run_ler("packed")
        assert [r.to_json_dict() for r in cold] == [
            r.to_json_dict() for r in packed
        ]

    def test_opt_out_skips_the_cache(self):
        _, replaying = run_ler("framesim", reference_cache=False)
        assert not replaying
        assert reference_cache_size() == 0

    def test_unseeded_runs_never_cache(self):
        _, replaying = run_ler("framesim", seed=None)
        assert not replaying
        assert reference_cache_size() == 0

    def test_distinct_seeds_get_distinct_entries(self):
        run_ler("framesim", seed=1)
        run_ler("framesim", seed=2)
        assert reference_cache_size() == 2
