"""Tests for the CLI entry points and the ASCII plotting utility."""

import pytest

from repro.cli import build_parser, main
from repro.utils.ascii_plot import scatter_plot


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        for command in (
            "verify",
            "ler",
            "sweep",
            "census",
            "schedule",
            "bound",
            "distance",
            "phenomenological",
            "inject",
        ):
            args = parser.parse_args(
                [command]
                if command
                not in ("ler", "sweep", "verify", "inject")
                else [command]
            )
            assert args.command == command

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sweep_flags(self):
        args = build_parser().parse_args(
            ["sweep", "--per", "1e-3", "2e-3", "--samples", "5", "--plot"]
        )
        assert args.per == [1e-3, 2e-3]
        assert args.samples == 5
        assert args.plot


class TestCommands:
    def test_bound(self, capsys):
        assert main(["bound", "--max-distance", "5"]) == 0
        output = capsys.readouterr().out
        assert "5.88%" in output and "3.03%" in output

    def test_schedule(self, capsys):
        assert main(["schedule"]) == 0
        assert "deadline relaxed" in capsys.readouterr().out

    def test_census(self, capsys):
        assert main(["census"]) == 0
        output = capsys.readouterr().out
        assert "teleport" in output
        assert "pauli gates" in output

    def test_inject(self, capsys):
        assert main(["inject", "--theta", "0.9", "--seed", "2"]) == 0
        assert "Bloch vector" in capsys.readouterr().out

    def test_ler(self, capsys):
        code = main(
            ["ler", "--per", "1e-2", "--errors", "2", "--seed", "5"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "without frame" in output and "with frame" in output

    def test_verify(self, capsys):
        code = main(
            [
                "verify",
                "--iterations",
                "3",
                "--qubits",
                "4",
                "--gates",
                "30",
            ]
        )
        assert code == 0
        assert "PASSED" in capsys.readouterr().out

    def test_distance(self, capsys):
        code = main(
            [
                "distance",
                "--distances",
                "3",
                "--per",
                "0.05",
                "--trials",
                "100",
            ]
        )
        assert code == 0
        assert "LER(d=3)" in capsys.readouterr().out

    def test_phenomenological(self, capsys):
        code = main(
            [
                "phenomenological",
                "--distances",
                "3",
                "--per",
                "0.02",
                "--trials",
                "50",
            ]
        )
        assert code == 0
        assert "LER(d=3)" in capsys.readouterr().out

    def test_sweep_with_plot(self, capsys):
        code = main(
            [
                "sweep",
                "--per",
                "1e-2",
                "--samples",
                "2",
                "--errors",
                "2",
                "--plot",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "mean rho" in output
        assert "without Pauli frame" in output


class TestScatterPlot:
    def test_basic_rendering(self):
        text = scatter_plot(
            {"a": [(1e-3, 1e-2), (1e-2, 1e-1)]},
            title="demo",
        )
        assert "demo" in text
        assert "o = a" in text
        assert text.count("o") >= 2  # marker plus legend

    def test_two_series_get_distinct_markers(self):
        text = scatter_plot(
            {
                "first": [(1.0, 1.0)],
                "second": [(2.0, 2.0)],
            },
            log_x=False,
            log_y=False,
        )
        assert "o = first" in text
        assert "x = second" in text

    def test_diagonal_reference_line(self):
        text = scatter_plot(
            {"a": [(1e-3, 1e-3), (1e-2, 1e-2)]},
            diagonal=True,
        )
        assert "." in text

    def test_nonpositive_points_dropped_on_log_axes(self):
        text = scatter_plot({"a": [(0.0, 1.0), (1.0, 1.0)]})
        assert "(no plottable points)" not in text
        empty = scatter_plot({"a": [(0.0, 1.0)]})
        assert "(no plottable points)" in empty

    def test_linear_axes_allow_zero(self):
        text = scatter_plot(
            {"a": [(0.0, 0.0), (1.0, 1.0)]},
            log_x=False,
            log_y=False,
        )
        assert "o = a" in text

    def test_degenerate_single_point(self):
        text = scatter_plot(
            {"a": [(5.0, 5.0)]}, log_x=False, log_y=False
        )
        assert "o = a" in text


class TestMemoryCommand:
    def test_memory(self, capsys):
        code = main(
            [
                "memory",
                "--distances",
                "3",
                "--per",
                "5e-3",
                "--trials",
                "20",
                "--seed",
                "4",
            ]
        )
        assert code == 0
        assert "block LER" in capsys.readouterr().out
