"""Soundness tests for the abstract Pauli-frame propagation."""

import itertools

import numpy as np
import pytest

from repro.analysis.frame_flow import IDENTITY, TOP, FrameFlow
from repro.circuits.operation import op
from repro.circuits.random_circuits import random_clifford_circuit
from repro.gates.gateset import GateClass
from repro.paulis.record import PauliRecord
from repro.paulis.tables import (
    SINGLE_QUBIT_MAP_TABLES,
    TWO_QUBIT_MAP_TABLES,
)


def concrete_step(records, operation):
    """Push one *concrete* per-qubit record assignment through an op.

    The reference semantics the abstract domain must over-approximate:
    the literal mapping tables of the paper, applied to single records.
    """
    if operation.gate_class is GateClass.PREPARE:
        records[operation.qubits[0]] = PauliRecord.I
        return
    if operation.gate_class is GateClass.MEASURE or operation.is_error:
        return
    table = SINGLE_QUBIT_MAP_TABLES.get(operation.name)
    if table is not None:
        qubit = operation.qubits[0]
        records[qubit] = table[records.get(qubit, PauliRecord.I)]
        return
    pair_table = TWO_QUBIT_MAP_TABLES[operation.name]
    first, second = operation.qubits
    out = pair_table[
        (
            records.get(first, PauliRecord.I),
            records.get(second, PauliRecord.I),
        )
    ]
    records[first], records[second] = out


@pytest.mark.parametrize("seed", range(8))
def test_abstract_state_contains_every_concrete_trajectory(seed):
    """Soundness: concrete records stay inside the abstract sets.

    Start from a concrete record assignment contained in the initial
    abstract state and run both semantics in lockstep; after every
    operation the concrete record of every qubit must be a member of
    the abstract record set computed for it.
    """
    rng = np.random.default_rng(seed)
    circuit = random_clifford_circuit(4, 50, rng=rng)
    flow = FrameFlow(initial=TOP)
    records = {
        qubit: PauliRecord(int(rng.integers(4))) for qubit in range(4)
    }
    for slot in circuit:
        for operation in slot:
            assert flow.apply(operation) is None
            concrete_step(records, operation)
            for qubit in range(4):
                concrete = records.get(qubit, None)
                if concrete is None:
                    continue
                assert concrete in flow.record_set(qubit), (
                    f"qubit {qubit} holds {concrete!r} outside "
                    f"abstract set after {operation!r}"
                )


def test_identity_start_single_qubit_flow_is_exact():
    """With a singleton start, single-qubit flow tracks concretely."""
    flow = FrameFlow(initial=IDENTITY)
    record = PauliRecord.I
    for gate in ("x", "h", "s", "z", "h", "sdg", "y"):
        flow.apply(op(gate, 0))
        record = SINGLE_QUBIT_MAP_TABLES[gate][record]
        assert flow.record_set(0) == frozenset({record})


def test_preparation_collapses_to_identity():
    flow = FrameFlow(initial=TOP)
    assert flow.record_set(0) == TOP
    flow.apply(op("prep_z", 0))
    assert flow.record_set(0) == IDENTITY


def test_measurement_preserves_the_record_set():
    flow = FrameFlow(initial=TOP)
    flow.apply(op("prep_z", 0))
    flow.apply(op("x", 0))
    before = flow.record_set(0)
    assert flow.apply(op("measure", 0)) is None
    assert flow.record_set(0) == before


def test_error_operations_do_not_touch_the_frame():
    flow = FrameFlow(initial=IDENTITY)
    assert flow.apply(op("x", 0, is_error=True)) is None
    assert flow.record_set(0) == IDENTITY


def test_non_clifford_commutes_only_through_identity():
    flow = FrameFlow(initial=IDENTITY)
    assert flow.apply(op("t", 0)) is None
    flow.apply(op("x", 0))
    violation = flow.apply(op("t", 0))
    assert violation is not None
    assert "t" in violation


def test_two_qubit_projection_is_a_superset_of_the_pair_map():
    """The per-qubit projection over-approximates the exact pair map."""
    flow = FrameFlow(initial=IDENTITY)
    flow.apply(op("x", 0))  # q0: {X}, q1: {I}
    flow.apply(op("cnot", 0, 1))
    exact = TWO_QUBIT_MAP_TABLES["cnot"][
        (PauliRecord.X, PauliRecord.I)
    ]
    assert exact[0] in flow.record_set(0)
    assert exact[1] in flow.record_set(1)


def test_cnot_from_top_stays_within_the_full_domain():
    flow = FrameFlow(initial=TOP)
    flow.apply(op("cnot", 0, 1))
    for qubit in (0, 1):
        assert flow.record_set(qubit) <= TOP
        assert flow.record_set(qubit)


def test_pairwise_exhaustive_cnot_soundness():
    """All 16 concrete pairs stay inside the projected abstract sets."""
    for a, b in itertools.product(PauliRecord, repeat=2):
        flow = FrameFlow(initial=IDENTITY)
        flow._records = {0: frozenset({a}), 1: frozenset({b})}
        flow.apply(op("cnot", 0, 1))
        out_a, out_b = TWO_QUBIT_MAP_TABLES["cnot"][(a, b)]
        assert out_a in flow.record_set(0)
        assert out_b in flow.record_set(1)


def test_snapshot_only_reports_touched_qubits():
    flow = FrameFlow(initial=TOP)
    flow.apply(op("h", 2))
    snapshot = flow.snapshot()
    assert set(snapshot) == {2}
    assert flow.record_set(5) == TOP
