"""Integration tests of the Pauli frame layer in control stacks.

The headline property (paper section 5.2): a stack with a Pauli frame
is observationally identical to one without -- same measurement
results, and after flushing, the same quantum state up to global
phase.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import (
    Circuit,
    random_circuit,
    random_clifford_circuit,
)
from repro.qpdo import (
    PauliFrameLayer,
    StabilizerCore,
    StateVectorCore,
)
from repro.sim import BinaryValue


def _prep(n):
    circuit = Circuit()
    for qubit in range(n):
        circuit.add("prep_z", qubit)
    return circuit


class TestMeasurementMapping:
    def test_filtered_x_still_flips_result(self):
        core = StabilizerCore(seed=0)
        layer = PauliFrameLayer(core)
        layer.createqubit(1)
        circuit = Circuit()
        circuit.add("x", 0)
        measure = circuit.add("measure", 0)
        result = layer.run(circuit)
        assert result.result_of(measure) == 1
        # Physically nothing happened: the simulator still holds |0>,
        # but the *observed* result was mapped (Table 3.2).
        assert core.simulator.peek_z(0) == 0

    def test_getstate_applies_frame(self):
        core = StabilizerCore(seed=0)
        layer = PauliFrameLayer(core)
        layer.createqubit(2)
        circuit = Circuit()
        circuit.add("x", 0)
        layer.run(circuit)
        state = layer.getstate()
        assert state[0] is BinaryValue.ONE
        assert state[1] is BinaryValue.ZERO

    def test_pending_flips_cleared_after_execute(self):
        layer = PauliFrameLayer(StabilizerCore(seed=0))
        layer.createqubit(1)
        circuit = Circuit()
        circuit.add("x", 0)
        circuit.add("measure", 0)
        layer.run(circuit)
        assert layer._pending_flips == {}

    def test_resize_tracks_allocation(self):
        layer = PauliFrameLayer(StabilizerCore(seed=0))
        layer.createqubit(3)
        assert layer.frame.num_qubits == 3
        layer.removequbit(1)
        assert layer.frame.num_qubits == 2


class TestObservationalEquivalence:
    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_clifford_circuit_measurements_match(self, seed):
        """Deterministic outcomes must agree bit for bit.

        Inherently random outcomes are sampled fresh by the tableau
        algorithm regardless of tracked Pauli signs, so bitwise
        reproducibility across the two stacks is only guaranteed (and
        only physically meaningful) for deterministic measurements.
        """
        rng = np.random.default_rng(seed)
        circuit = random_clifford_circuit(4, 30, rng=rng)

        plain = StabilizerCore(seed=seed)
        plain.createqubit(4)
        plain.run(_prep(4))
        plain.run(circuit.copy())
        deterministic = {
            qubit: plain.simulator.peek_z(qubit)
            for qubit in range(4)
            if plain.simulator.peek_z(qubit) is not None
        }

        framed_core = StabilizerCore(seed=seed)
        framed = PauliFrameLayer(framed_core)
        framed.createqubit(4)
        framed.run(_prep(4))
        framed.run(circuit.copy())
        measured = Circuit()
        measures = {q: measured.add("measure", q) for q in range(4)}
        framed_result = framed.run(measured)

        for qubit, expected in deterministic.items():
            assert framed_result.result_of(measures[qubit]) == expected

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_universal_circuit_state_matches_after_flush(self, seed):
        """Random Clifford+T circuits: flushing restores the state."""
        rng = np.random.default_rng(seed)
        circuit = random_circuit(4, 40, rng=rng)

        plain = StateVectorCore(seed=1)
        plain.createqubit(4)
        plain.run(_prep(4))
        plain.run(circuit.copy())
        reference = plain.getquantumstate()

        core = StateVectorCore(seed=1)
        framed = PauliFrameLayer(core)
        framed.createqubit(4)
        framed.run(_prep(4))
        framed.run(circuit.copy())
        framed.flush()
        assert core.getquantumstate().equal_up_to_global_phase(reference)
        assert framed.frame.is_clean()

    def test_flush_with_clean_frame_is_noop(self):
        core = StateVectorCore(seed=0)
        framed = PauliFrameLayer(core)
        framed.createqubit(1)
        framed.flush()  # nothing tracked, nothing executed
        assert core.getquantumstate().probability(0) == pytest.approx(1.0)

    def test_statistics_accumulate_across_circuits(self):
        layer = PauliFrameLayer(StabilizerCore(seed=0))
        layer.createqubit(1)
        for _ in range(3):
            circuit = Circuit()
            circuit.add("x", 0)
            layer.run(circuit)
        assert layer.statistics.pauli_gates_filtered == 3
        layer.reset_statistics()
        assert layer.statistics.pauli_gates_filtered == 0


class TestBypassInteraction:
    def test_bypass_circuits_still_mapped(self):
        """Diagnostic circuits must see frame-corrected results."""
        core = StabilizerCore(seed=0)
        layer = PauliFrameLayer(core)
        layer.createqubit(1)
        tracked = Circuit()
        tracked.add("x", 0)
        layer.run(tracked)
        diagnostic = Circuit("diag", bypass=True)
        measure = diagnostic.add("measure", 0)
        result = layer.run(diagnostic)
        assert result.result_of(measure) == 1
