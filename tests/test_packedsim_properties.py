"""Property-based tests of the packed bit-plane kernels.

Hypothesis drives the word-level kernels of
:mod:`repro.sim.packedsim` against their obvious unpacked numpy
counterparts over arbitrary shot counts (so the ragged last word is
exercised constantly, not just at hand-picked sizes):

* ``pack_bits``/``unpack_bits`` are mutually inverse and keep tail
  bits zero,
* XOR/AND on packed words equal XOR/AND on the bool arrays,
* ``popcount_words`` equals ``np.sum``,
* ``packed_majority`` equals the ``sum * 2 > rounds`` vote,
* a random Clifford+noise frame program advances
  :class:`PackedFrameArray` and the unpacked :class:`FrameArray`
  identically when fed identical RNG streams.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.framesim import FrameArray
from repro.sim.packedsim import (
    PackedFrameArray,
    full_mask,
    num_words,
    pack_bits,
    packed_majority,
    popcount_words,
    unpack_bits,
)

#: Shot counts straddle word boundaries by construction.
shot_counts = st.integers(min_value=1, max_value=200)


def bool_rows(draw, num_shots, rows=None):
    """A (rows, num_shots) — or (num_shots,) — random bool array."""
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = np.random.default_rng(seed)
    shape = (num_shots,) if rows is None else (rows, num_shots)
    return rng.random(shape) < draw(
        st.floats(min_value=0.0, max_value=1.0)
    )


class TestPackRoundTrip:
    @given(st.data(), shot_counts)
    @settings(deadline=None)
    def test_bits_to_words_to_bits(self, data, num_shots):
        bits = bool_rows(data.draw, num_shots)
        words = pack_bits(bits)
        assert words.shape == (num_words(num_shots),)
        assert np.array_equal(unpack_bits(words, num_shots), bits)

    @given(st.data(), shot_counts)
    @settings(deadline=None)
    def test_tail_bits_stay_zero(self, data, num_shots):
        bits = bool_rows(data.draw, num_shots)
        words = pack_bits(bits)
        assert np.all(words & ~full_mask(num_shots) == 0)

    @given(st.data(), shot_counts, st.integers(1, 5))
    @settings(deadline=None)
    def test_words_to_bits_to_words(self, data, num_shots, rows):
        seed = data.draw(st.integers(min_value=0, max_value=2**32 - 1))
        rng = np.random.default_rng(seed)
        words = rng.integers(
            0, 2**64, size=(rows, num_words(num_shots)), dtype=np.uint64
        ) & full_mask(num_shots)
        bits = unpack_bits(words, num_shots)
        assert bits.shape == (rows, num_shots)
        assert np.array_equal(pack_bits(bits), words)


class TestWordKernels:
    @given(st.data(), shot_counts)
    @settings(deadline=None)
    def test_xor_and_not_match_bool_algebra(self, data, num_shots):
        a = bool_rows(data.draw, num_shots)
        b = bool_rows(data.draw, num_shots)
        wa, wb = pack_bits(a), pack_bits(b)
        assert np.array_equal(wa ^ wb, pack_bits(a ^ b))
        assert np.array_equal(wa & wb, pack_bits(a & b))
        # NOT over the valid shots = XOR with the full mask.
        assert np.array_equal(
            wa ^ full_mask(num_shots), pack_bits(~a)
        )

    @given(st.data(), shot_counts, st.integers(1, 4))
    @settings(deadline=None)
    def test_popcount_matches_sum(self, data, num_shots, rows):
        bits = bool_rows(data.draw, num_shots, rows=rows)
        words = pack_bits(bits)
        assert popcount_words(words).sum() == bits.sum()

    @given(st.data(), shot_counts, st.integers(1, 9))
    @settings(deadline=None)
    def test_majority_matches_sum_vote(self, data, num_shots, rounds):
        planes = np.stack(
            [
                pack_bits(bool_rows(data.draw, num_shots))
                for _ in range(rounds)
            ]
        )
        voted = packed_majority(planes)
        expected = (
            unpack_bits(planes, num_shots).sum(axis=0) * 2 > rounds
        )
        assert np.array_equal(unpack_bits(voted, num_shots), expected)
        # The vote itself must keep the tail clean.
        assert np.all(voted & ~full_mask(num_shots) == 0)


#: One random frame-program step: (kind, payload...).
def program_steps(num_qubits):
    one = st.integers(0, num_qubits - 1)
    pairs = st.tuples(one, one).filter(lambda p: p[0] != p[1])
    steps = [
        st.tuples(st.just("h"), one),
        st.tuples(st.just("s"), one),
        st.tuples(st.just("cnot"), pairs),
        st.tuples(st.just("cz"), pairs),
        st.tuples(st.just("swap"), pairs),
        st.tuples(st.just("reset"), one),
        st.tuples(st.just("measure"), one),
        st.tuples(st.just("xerr"), one),
        st.tuples(st.just("depolarize1"), one),
        st.tuples(st.just("depolarize2"), pairs),
        st.tuples(st.just("pauli_masks"), st.just(None)),
    ]
    return st.lists(st.one_of(steps), min_size=1, max_size=25)


class TestFrameProgramEquivalence:
    """Identical RNG streams => identical frames, step by step."""

    @given(
        st.data(),
        st.integers(min_value=1, max_value=130),
        st.integers(min_value=2, max_value=5),
    )
    @settings(deadline=None, max_examples=40)
    def test_random_program(self, data, num_shots, num_qubits):
        steps = data.draw(program_steps(num_qubits))
        seed = data.draw(st.integers(min_value=0, max_value=2**32 - 1))
        rng_ref = np.random.default_rng(seed)
        rng_packed = np.random.default_rng(seed)
        mask_rng = np.random.default_rng(seed + 1)

        reference = FrameArray(num_shots, 0)
        packed = PackedFrameArray(num_shots, 0, rng_mode="exact")
        reference.add_qubits(num_qubits, rng_ref)
        packed.add_qubits(num_qubits, rng_packed)

        for kind, payload in steps:
            if kind in ("h", "s"):
                getattr(reference, kind)(payload)
                getattr(packed, kind)(payload)
            elif kind in ("cnot", "cz", "swap"):
                getattr(reference, kind)(*payload)
                getattr(packed, kind)(*payload)
            elif kind == "reset":
                reference.reset(payload, rng_ref)
                packed.reset(payload, rng_packed)
            elif kind == "measure":
                flips_ref = reference.measure_flips(payload, rng_ref)
                flips_packed = packed.measure_flips(
                    payload, rng_packed
                )
                assert np.array_equal(
                    flips_ref, unpack_bits(flips_packed, num_shots)
                )
            elif kind == "xerr":
                reference.xerr(payload, 0.2, rng_ref)
                packed.xerr(payload, 0.2, rng_packed)
            elif kind == "depolarize1":
                reference.depolarize1(payload, 0.2, rng_ref)
                packed.depolarize1(payload, 0.2, rng_packed)
            elif kind == "depolarize2":
                reference.depolarize2(*payload, 0.2, rng_ref)
                packed.depolarize2(*payload, 0.2, rng_packed)
            else:  # pauli_masks
                x_mask = mask_rng.random((num_shots, num_qubits)) < 0.3
                z_mask = mask_rng.random((num_shots, num_qubits)) < 0.3
                reference.x ^= x_mask
                reference.z ^= z_mask
                packed.apply_pauli_masks(x_mask, z_mask)
            assert np.array_equal(packed.x_bool(), reference.x)
            assert np.array_equal(packed.z_bool(), reference.z)

    @given(st.data(), st.integers(min_value=1, max_value=130))
    @settings(deadline=None, max_examples=20)
    def test_error_weight_matches_bool_count(self, data, num_shots):
        seed = data.draw(st.integers(min_value=0, max_value=2**32 - 1))
        rng = np.random.default_rng(seed)
        packed = PackedFrameArray(num_shots, 0)
        packed.add_qubits(4, rng)
        for qubit in range(4):
            packed.depolarize1(qubit, 0.4, rng)
        assert packed.error_weight() == (
            packed.x_bool().sum() + packed.z_bool().sum()
        )
