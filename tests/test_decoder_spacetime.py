"""Dedicated unit tests for the space-time MWPM decoder.

Exercises :mod:`repro.decoders.spacetime` directly (previously only
covered indirectly through the phenomenological experiment): detection
event extraction, temporal vs spatial matching, boundary termination
and the ``time_weight`` knob, on a rotated d=3 surface code.
"""

import numpy as np
import pytest

from repro.codes.rotated.layout import RotatedSurfaceCode
from repro.decoders.mwpm import boundary_qubits_for
from repro.decoders.spacetime import SpaceTimeMatchingDecoder


@pytest.fixture(scope="module")
def code():
    return RotatedSurfaceCode(3)


@pytest.fixture(scope="module")
def decoder(code):
    return SpaceTimeMatchingDecoder(
        code.z_check_matrix, boundary_qubits_for(code, "z")
    )


def syndrome_of(code, error: np.ndarray) -> np.ndarray:
    return (code.z_check_matrix @ error.astype(np.uint8)) % 2


def history_for_persistent_error(code, error, rounds=3):
    """Noiseless history: the error appears in round 0 and persists."""
    syndrome = syndrome_of(code, error)
    return [syndrome.copy() for _ in range(rounds)]


def assert_corrects(code, decoder, error, history):
    """Decoded correction must clear the syndrome without a logical."""
    correction = decoder.decode_history(history)
    residual = error.astype(bool) ^ correction
    assert not syndrome_of(code, residual).any()
    logical = np.zeros(code.num_data, dtype=bool)
    for qubit in code.logical_z_support():
        logical[qubit] = True
    assert np.count_nonzero(residual & logical) % 2 == 0


class TestDetectionEvents:
    def test_no_events_on_clean_history(self, decoder):
        clean = [np.zeros(decoder.graph.num_checks, dtype=np.uint8)] * 4
        assert decoder.detection_events(clean) == []

    def test_persistent_error_fires_once(self, code, decoder):
        """A data error triggers events only in the round it appears."""
        error = np.zeros(code.num_data, dtype=np.uint8)
        error[code.data_index(1, 1)] = 1
        history = history_for_persistent_error(code, error, rounds=4)
        events = decoder.detection_events(history)
        touched = np.flatnonzero(syndrome_of(code, error))
        assert sorted(events) == [(0, int(c)) for c in touched]

    def test_round_zero_compared_against_codespace(self, code, decoder):
        """Round 0 is measured against the all-zero reference."""
        error = np.zeros(code.num_data, dtype=np.uint8)
        error[code.data_index(0, 0)] = 1
        events = decoder.detection_events([syndrome_of(code, error)])
        assert all(round_index == 0 for round_index, _check in events)
        assert len(events) == int(syndrome_of(code, error).sum())

    def test_measurement_blip_fires_twice(self, code, decoder):
        """A one-round syndrome misread yields a temporal event pair."""
        blank = np.zeros(code.z_check_matrix.shape[0], dtype=np.uint8)
        blip = blank.copy()
        blip[2] = 1
        events = decoder.detection_events([blank, blip, blank, blank])
        assert events == [(1, 2), (2, 2)]


class TestDecoding:
    def test_empty_event_list_corrects_nothing(self, decoder):
        assert not decoder.decode_events([]).any()

    def test_measurement_error_corrects_nothing(self, code, decoder):
        """Temporal pairs re-interpret measurements, not data."""
        blank = np.zeros(code.z_check_matrix.shape[0], dtype=np.uint8)
        blip = blank.copy()
        blip[1] = 1
        correction = decoder.decode_history(
            [blank, blip, blank, blank]
        )
        assert not correction.any()

    @pytest.mark.parametrize("row,col", [(1, 1), (0, 0), (2, 1)])
    def test_single_data_error_corrected(self, code, decoder, row, col):
        error = np.zeros(code.num_data, dtype=np.uint8)
        error[code.data_index(row, col)] = 1
        history = history_for_persistent_error(code, error)
        assert_corrects(code, decoder, error, history)

    def test_boundary_termination(self, code, decoder):
        """A corner error with a single lit check matches the boundary."""
        error = np.zeros(code.num_data, dtype=np.uint8)
        error[code.data_index(0, 0)] = 1
        lit = syndrome_of(code, error)
        if lit.sum() == 1:
            history = history_for_persistent_error(code, error)
            correction = decoder.decode_history(history)
            # The matched chain leaves through the boundary and clears
            # the single lit check.
            assert not syndrome_of(
                code, error.astype(bool) ^ correction
            ).any()

    def test_mixed_data_and_measurement_errors(self, code, decoder):
        """Space-time decoding separates a data error from a misread."""
        error = np.zeros(code.num_data, dtype=np.uint8)
        error[code.data_index(1, 0)] = 1
        syndrome = syndrome_of(code, error)
        misread = syndrome.copy()
        misread[(int(np.flatnonzero(syndrome)[0]) + 1) % len(syndrome)] ^= 1
        history = [syndrome, misread, syndrome, syndrome]
        assert_corrects(code, decoder, error, history)

    def test_two_errors_same_round(self, code, decoder):
        error = np.zeros(code.num_data, dtype=np.uint8)
        error[code.data_index(0, 0)] = 1
        error[code.data_index(2, 2)] = 1
        history = history_for_persistent_error(code, error)
        assert_corrects(code, decoder, error, history)


class TestTimeWeight:
    def test_large_time_weight_discourages_temporal_matching(self, code):
        """Two events on neighbouring checks, three rounds apart.

        Cheap temporal steps let them pair across time (one data-qubit
        correction on the shared qubit); expensive ones push both out
        through the spatial boundary (two boundary chains).
        """
        boundary = boundary_qubits_for(code, "z")
        cheap_time = SpaceTimeMatchingDecoder(
            code.z_check_matrix, boundary, time_weight=0.0
        )
        costly_time = SpaceTimeMatchingDecoder(
            code.z_check_matrix, boundary, time_weight=100.0
        )
        events = [(0, 0), (3, 1)]
        paired = cheap_time.decode_events(events)
        via_boundary = costly_time.decode_events(events)
        assert int(paired.sum()) == 1
        assert int(via_boundary.sum()) == 2
        assert not np.array_equal(paired, via_boundary)

    def test_time_weight_stored(self, code):
        decoder = SpaceTimeMatchingDecoder(
            code.z_check_matrix,
            boundary_qubits_for(code, "z"),
            time_weight=2.5,
        )
        assert decoder.time_weight == 2.5
