"""The static capability-matrix checker (``repro analyze matrix``)."""

import json
import textwrap

import pytest

from repro.analysis.matrix import (
    ENGINE_CAPABILITIES,
    EXPERIMENT_REQUIREMENTS,
    check_doc_grammar,
    verify_matrix,
)
from repro.decoders.registry import (
    CAP_SPACETIME,
    CAP_WINDOWED,
    RegisteredDecoder,
    register_decoder,
    unregister_decoder,
)


def test_builtin_registry_passes():
    verification = verify_matrix()
    assert verification.passed, verification.problems
    assert set(verification.decoders) >= {
        "lut",
        "per-shot-lut",
        "mwpm",
        "unionfind",
        "sparse-mwpm",
    }
    assert verification.engines == sorted(ENGINE_CAPABILITIES)
    assert verification.experiments == sorted(
        EXPERIMENT_REQUIREMENTS
    )
    # Every decoder x engine and decoder x experiment combination is
    # enumerated -- no silent gaps.
    expected = len(verification.decoders) * (
        len(ENGINE_CAPABILITIES) + len(EXPERIMENT_REQUIREMENTS)
    )
    assert len(verification.cells) == expected
    assert verification.doc_examples > 0


def test_packed_engine_requires_packed_syndromes():
    verification = verify_matrix()
    cells = {
        (cell.decoder, cell.context): cell.supported
        for cell in verification.cells
    }
    # All builtins carry packed-syndromes today, so every engine
    # pairing is supported; the structure is what we pin here.
    for decoder in verification.decoders:
        assert cells[(decoder, "engine:framesim")]
    assert not cells[("per-shot-lut", "experiment:serve")]
    assert not cells[("lut", "experiment:phenomenological")]


def test_broken_registry_entry_fails_matrix():
    # The pinned negative: a capability claimed without its builders
    # must turn into a named problem and a failing report.
    broken = RegisteredDecoder(
        name="broken-test-decoder",
        summary="intentionally inconsistent entry",
        capabilities=frozenset((CAP_WINDOWED, CAP_SPACETIME)),
        window_builder=None,
        space_builder=None,
        spacetime_builder=None,
    )
    register_decoder(broken)
    try:
        verification = verify_matrix()
        assert not verification.passed
        mentioned = [
            p
            for p in verification.problems
            if "broken-test-decoder" in p
        ]
        assert any("window_builder" in p for p in mentioned)
        assert any("spacetime" in p for p in mentioned)
    finally:
        unregister_decoder("broken-test-decoder")
    assert verify_matrix().passed


def test_doc_grammar_rejects_unknown_decoder(tmp_path):
    doc = tmp_path / "README.md"
    doc.write_text("run with --decoder bogus-decoder\n")
    examples, problems = check_doc_grammar([doc])
    assert examples == 1
    assert any("bogus-decoder" in p for p in problems)


def test_doc_grammar_rejects_alias(tmp_path):
    doc = tmp_path / "README.md"
    doc.write_text("run with --decoder batched\n")
    _, problems = check_doc_grammar([doc])
    assert any("alias" in p for p in problems)


def test_doc_grammar_rejects_undeclared_param(tmp_path):
    doc = tmp_path / "README.md"
    doc.write_text(
        "run with --decoder unionfind:not_a_param=3\n"
    )
    _, problems = check_doc_grammar([doc])
    assert any("not_a_param" in p for p in problems)


def test_doc_grammar_accepts_valid_examples(tmp_path):
    doc = tmp_path / "README.md"
    doc.write_text(
        textwrap.dedent(
            """
            --decoder unionfind
            --decoder mwpm:time_weight=2.0
            --decoder NAME[:KEY=VALUE,...]  (the grammar itself)
            """
        )
    )
    examples, problems = check_doc_grammar([doc])
    assert problems == []
    assert examples == 2  # the placeholder is not an example


def test_missing_doc_is_a_problem(tmp_path):
    _, problems = check_doc_grammar([tmp_path / "absent.md"])
    assert any("missing" in p for p in problems)


def test_cli_analyze_matrix_json(capsys):
    from repro.cli import main
    from repro.experiments.schemas import REPORT_SCHEMAS

    assert main(["analyze", "matrix", "--json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["kind"] == "matrix_report"
    assert document["passed"] is True
    jsonschema = pytest.importorskip("jsonschema")
    jsonschema.validate(document, REPORT_SCHEMAS["matrix_report"])


def test_cli_analyze_matrix_fails_on_broken_registry(capsys):
    from repro.cli import main

    broken = RegisteredDecoder(
        name="broken-cli-decoder",
        summary="cli negative",
        capabilities=frozenset((CAP_WINDOWED,)),
    )
    register_decoder(broken)
    try:
        assert main(["analyze", "matrix", "--json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["passed"] is False
        assert any(
            "broken-cli-decoder" in p
            for p in document["problems"]
        )
    finally:
        unregister_decoder("broken-cli-decoder")


def test_matrix_report_round_trips():
    from repro.experiments.results import (
        MatrixReport,
        result_from_json,
    )

    verification = verify_matrix()
    report = MatrixReport(
        decoders=verification.decoders,
        engines=verification.engines,
        experiments=verification.experiments,
        cells=[c.to_json_dict() for c in verification.cells],
        doc_examples=verification.doc_examples,
        problems=verification.problems,
        passed=verification.passed,
    )
    rebuilt = result_from_json(report.to_json())
    assert rebuilt == report
