"""Tests for the windowed rule-based decoder (Fig. 5.9)."""

import numpy as np
import pytest

from repro.codes.surface17 import X_CHECK_MATRIX, Z_CHECK_MATRIX
from repro.decoders import (
    SyndromeRound,
    WindowedLutDecoder,
    majority_vote,
    syndrome_of,
)


def trivial_round():
    return SyndromeRound.from_bits([0, 0, 0, 0], [0, 0, 0, 0])


def x_error_round(qubit):
    z_syndrome = syndrome_of(
        Z_CHECK_MATRIX, np.eye(9, dtype=np.uint8)[qubit]
    )
    return SyndromeRound.from_bits([0, 0, 0, 0], list(z_syndrome))


@pytest.fixture
def decoder():
    return WindowedLutDecoder(X_CHECK_MATRIX, Z_CHECK_MATRIX)


class TestMajorityVote:
    def test_simple_vote(self):
        rounds = [
            np.array([1, 0, 0, 1]),
            np.array([1, 0, 1, 0]),
            np.array([1, 1, 0, 0]),
        ]
        assert list(majority_vote(rounds)) == [True, False, False, False]

    def test_single_round_passthrough(self):
        assert list(majority_vote([np.array([0, 1])])) == [False, True]


class TestInitialization:
    def test_requires_odd_round_count(self, decoder):
        with pytest.raises(ValueError):
            decoder.initialize([trivial_round(), trivial_round()])

    def test_trivial_init(self, decoder):
        decision = decoder.initialize([trivial_round()] * 3)
        assert not decision.has_corrections

    def test_decode_before_init_rejected(self, decoder):
        with pytest.raises(RuntimeError):
            decoder.decode_window([trivial_round()] * 2)

    def test_reset_clears_history(self, decoder):
        decoder.initialize([trivial_round()] * 3)
        decoder.reset()
        with pytest.raises(RuntimeError):
            decoder.decode_window([trivial_round()] * 2)


class TestWindowDecoding:
    def test_persistent_error_corrected(self, decoder):
        """An error visible in both rounds of a window is decoded."""
        decoder.initialize([trivial_round()] * 3)
        decision = decoder.decode_window([x_error_round(4)] * 2)
        assert list(np.flatnonzero(decision.x_corrections)) == [4]
        assert not decision.z_corrections.any()

    def test_single_measurement_error_is_voted_away(self, decoder):
        """A syndrome blip in one round only must NOT trigger."""
        decoder.initialize([trivial_round()] * 3)
        decision = decoder.decode_window(
            [x_error_round(4), trivial_round()]
        )
        assert not decision.has_corrections

    def test_correction_frame_bookkeeping(self, decoder):
        """After correcting, the same physical syndrome reads as clean.

        Without a Pauli frame applying corrections the physical error
        stays, so subsequent rounds keep showing its syndrome; the
        decoder's stored previous round must account for the commanded
        correction so it does not re-fire forever...  but with the
        correction *applied*, rounds go trivial and the stored frame
        must not invent a phantom error either.
        """
        decoder.initialize([trivial_round()] * 3)
        decision = decoder.decode_window([x_error_round(4)] * 2)
        assert decision.has_corrections
        # Corrections applied physically -> next rounds are trivial.
        decision = decoder.decode_window([trivial_round()] * 2)
        assert not decision.has_corrections
        decision = decoder.decode_window([trivial_round()] * 2)
        assert not decision.has_corrections

    def test_pauli_frame_style_bookkeeping(self, decoder):
        """Frame-adjusted syndromes: the error reads trivial afterwards.

        With a Pauli frame the correction is never applied, but the
        frame flips the ancilla results, so the decoder *also* sees
        trivial syndromes after its correction was absorbed.  Same
        stability condition as the physical case.
        """
        decoder.initialize([trivial_round()] * 3)
        decoder.decode_window([x_error_round(4)] * 2)
        decision = decoder.decode_window([trivial_round()] * 2)
        assert not decision.has_corrections

    def test_error_arriving_in_second_round_defers(self, decoder):
        """An error in the last round alone is below the vote threshold
        this window but must be caught next window."""
        decoder.initialize([trivial_round()] * 3)
        decision = decoder.decode_window(
            [trivial_round(), x_error_round(0)]
        )
        assert not decision.has_corrections
        decision = decoder.decode_window([x_error_round(0)] * 2)
        assert list(np.flatnonzero(decision.x_corrections)) == [0]

    def test_voted_syndrome_exposed(self, decoder):
        decoder.initialize([trivial_round()] * 3)
        decision = decoder.decode_window([x_error_round(4)] * 2)
        assert decision.voted.z_syndrome.any()

    def test_z_errors_decoded_via_x_syndrome(self, decoder):
        decoder.initialize([trivial_round()] * 3)
        x_syndrome = syndrome_of(
            X_CHECK_MATRIX, np.eye(9, dtype=np.uint8)[3]
        )
        z_round = SyndromeRound.from_bits(
            list(x_syndrome), [0, 0, 0, 0]
        )
        decision = decoder.decode_window([z_round] * 2)
        residual = np.eye(9, dtype=np.uint8)[3] ^ (
            decision.z_corrections.astype(np.uint8)
        )
        # Degenerate decoding: the residual must be a stabilizer.
        assert not syndrome_of(X_CHECK_MATRIX, residual).any()
        assert residual[[2, 4, 6]].sum() % 2 == 0


class TestSyndromeRound:
    def test_is_trivial(self):
        assert trivial_round().is_trivial()
        assert not x_error_round(1).is_trivial()

    def test_from_bits_copies(self):
        bits = np.array([0, 0, 0, 0], dtype=bool)
        syndrome_round = SyndromeRound.from_bits(bits, bits)
        bits[0] = True
        assert not syndrome_round.x_syndrome[0]
