"""Tests for the layer machinery: base layer, counters, error layer."""

import numpy as np
import pytest

from repro.circuits import Circuit, op
from repro.qpdo import (
    ControlStack,
    CounterLayer,
    DepolarizingErrorLayer,
    Layer,
    StabilizerCore,
    StateVectorCore,
    TWO_QUBIT_ERRORS,
)


class TestBaseLayer:
    def test_default_layer_is_transparent(self):
        core = StabilizerCore(seed=0)
        layer = Layer(core)
        layer.createqubit(1)
        circuit = Circuit()
        measure = circuit.add("measure", 0)
        result = layer.run(circuit)
        assert result.result_of(measure) == 0
        assert layer.num_qubits == 1

    def test_control_stack_assembly(self):
        stack = ControlStack(
            StabilizerCore(seed=0), [CounterLayer, CounterLayer]
        )
        assert isinstance(stack.top, CounterLayer)
        assert len(stack.layers) == 2
        with pytest.raises(LookupError):
            stack.find(CounterLayer)  # two instances, ambiguous

    def test_control_stack_find_unique(self):
        stack = ControlStack(StabilizerCore(seed=0), [CounterLayer])
        assert stack.find(CounterLayer) is stack.layers[0]


class TestCounterLayer:
    def test_counts_commands(self):
        counter = CounterLayer(StabilizerCore(seed=0))
        counter.createqubit(2)
        circuit = Circuit()
        circuit.add("h", 0)
        circuit.add("x", 1)  # same slot
        circuit.add("cnot", 0, 1)
        circuit.add("measure", 0)
        counter.run(circuit)
        assert counter.counts.circuits == 1
        assert counter.counts.operations == 4
        assert counter.counts.measurements == 1
        assert counter.counts.slots == 3
        assert counter.results_seen == 1

    def test_bypass_circuits_not_counted(self):
        counter = CounterLayer(StabilizerCore(seed=0))
        counter.createqubit(1)
        circuit = Circuit("diag", bypass=True)
        circuit.add("h", 0)
        counter.run(circuit)
        assert counter.counts.operations == 0
        assert counter.counts.bypass_circuits == 1

    def test_error_operations_counted_separately(self):
        counter = CounterLayer(StabilizerCore(seed=0))
        counter.createqubit(1)
        circuit = Circuit()
        circuit.append(op("h", 0))
        circuit.barrier()
        circuit.append(op("x", 0, is_error=True))
        counter.run(circuit)
        assert counter.counts.operations == 1
        assert counter.counts.error_operations == 1
        # The error-only slot does not count as a commanded slot.
        assert counter.counts.slots == 1

    def test_snapshot_and_minus(self):
        counter = CounterLayer(StabilizerCore(seed=0))
        counter.createqubit(1)
        circuit = Circuit()
        circuit.add("h", 0)
        counter.run(circuit)
        before = counter.counts.snapshot()
        counter.run(circuit.copy(fresh_uids=True))
        delta = counter.counts.minus(before)
        assert delta.operations == 1
        assert before.operations == 1

    def test_reset_counts(self):
        counter = CounterLayer(StabilizerCore(seed=0))
        counter.createqubit(1)
        circuit = Circuit()
        circuit.add("h", 0)
        counter.run(circuit)
        counter.reset_counts()
        assert counter.counts.operations == 0


class TestErrorLayer:
    def test_zero_probability_is_transparent(self):
        layer = DepolarizingErrorLayer(
            StabilizerCore(seed=0), probability=0.0, seed=1
        )
        layer.createqubit(2)
        circuit = Circuit()
        circuit.add("h", 0)
        processed = layer.process_down(circuit)
        assert processed is circuit

    def test_bypass_circuits_skip_noise(self):
        layer = DepolarizingErrorLayer(
            StabilizerCore(seed=0), probability=1.0, seed=1
        )
        layer.createqubit(1)
        circuit = Circuit("diag", bypass=True)
        circuit.add("h", 0)
        processed = layer.process_down(circuit)
        assert processed is circuit
        assert layer.counts.total == 0

    def test_certain_noise_inserts_errors(self):
        layer = DepolarizingErrorLayer(
            StabilizerCore(seed=0), probability=1.0, seed=1
        )
        layer.createqubit(2)
        circuit = Circuit()
        circuit.add("h", 0)
        processed = layer.process_down(circuit)
        error_ops = [o for o in processed.operations() if o.is_error]
        # One gate error on qubit 0 + one idle error on qubit 1.
        assert len(error_ops) == 2
        assert layer.counts.gate_errors == 1
        assert layer.counts.idle_errors == 1

    def test_measurement_error_is_x_before(self):
        layer = DepolarizingErrorLayer(
            StabilizerCore(seed=0),
            probability=1.0,
            seed=1,
            active_qubits=[0],
        )
        layer.createqubit(1)
        circuit = Circuit()
        circuit.add("measure", 0)
        processed = layer.process_down(circuit)
        ops = list(processed.operations())
        assert ops[0].is_error and ops[0].name == "x"
        assert ops[1].is_measurement
        assert layer.counts.measurement_errors == 1

    def test_measurement_error_flips_result(self):
        core = StabilizerCore(seed=0)
        layer = DepolarizingErrorLayer(core, probability=1.0, seed=1,
                                       active_qubits=[0])
        layer.createqubit(1)
        circuit = Circuit()
        measure = circuit.add("measure", 0)
        result = layer.run(circuit)
        assert result.result_of(measure) == 1  # X flipped |0> first

    def test_preparation_error(self):
        layer = DepolarizingErrorLayer(
            StabilizerCore(seed=0),
            probability=1.0,
            seed=1,
            active_qubits=[0],
        )
        layer.createqubit(1)
        circuit = Circuit()
        circuit.add("prep_z", 0)
        processed = layer.process_down(circuit)
        names = [(o.name, o.is_error) for o in processed.operations()]
        assert names == [("prep_z", False), ("x", True)]

    def test_two_qubit_errors_come_in_pairs_from_the_table(self):
        layer = DepolarizingErrorLayer(
            StabilizerCore(seed=0),
            probability=1.0,
            seed=7,
            active_qubits=[0, 1],
        )
        layer.createqubit(2)
        circuit = Circuit()
        circuit.add("cnot", 0, 1)
        processed = layer.process_down(circuit)
        error_ops = [o for o in processed.operations() if o.is_error]
        assert 1 <= len(error_ops) <= 2
        assert layer.counts.two_qubit_errors == 1

    def test_two_qubit_error_table_has_15_entries(self):
        assert len(TWO_QUBIT_ERRORS) == 15
        assert ("i", "i") not in TWO_QUBIT_ERRORS

    def test_active_qubits_limit_idle_noise(self):
        layer = DepolarizingErrorLayer(
            StabilizerCore(seed=0),
            probability=1.0,
            seed=1,
            active_qubits=[0],
        )
        layer.createqubit(3)
        circuit = Circuit()
        circuit.add("h", 0)
        processed = layer.process_down(circuit)
        error_qubits = {
            o.qubits[0] for o in processed.operations() if o.is_error
        }
        assert error_qubits == {0}

    def test_error_rate_statistics(self):
        """At p the average error count per op approaches p."""
        rng = np.random.default_rng(5)
        layer = DepolarizingErrorLayer(
            StabilizerCore(seed=0),
            probability=0.2,
            rng=rng,
            active_qubits=[0],
        )
        layer.createqubit(1)
        for _ in range(500):
            circuit = Circuit()
            circuit.add("h", 0)
            layer.process_down(circuit)
        assert 60 < layer.counts.total < 140  # ~100 expected

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            DepolarizingErrorLayer(StabilizerCore(seed=0), probability=1.5)
        layer = DepolarizingErrorLayer(StabilizerCore(seed=0), 0.1)
        with pytest.raises(ValueError):
            layer.set_probability(-0.1)

    def test_set_probability(self):
        layer = DepolarizingErrorLayer(StabilizerCore(seed=0), 0.1)
        layer.set_probability(0.5)
        assert layer.probability == 0.5
