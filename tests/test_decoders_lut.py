"""Tests for the LUT decoders (sections 5.1.3 / 5.3.1)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes.steane import HAMMING_CHECK_MATRIX
from repro.codes.surface17 import X_CHECK_MATRIX, Z_CHECK_MATRIX
from repro.decoders import (
    LutDecoder,
    TwoLutDecoder,
    build_lut,
    correction_operations,
    pack_syndrome,
    syndrome_of,
    unpack_syndrome,
)


class TestSyndromePacking:
    def test_round_trip(self):
        for packed in range(16):
            bits = unpack_syndrome(packed, 4)
            assert pack_syndrome(bits) == packed

    def test_syndrome_of(self):
        error = np.zeros(9, dtype=np.uint8)
        error[4] = 1
        syndrome = syndrome_of(Z_CHECK_MATRIX, error)
        # D4 participates in Z1Z2Z4Z5 and Z3Z4Z6Z7 (rows 1 and 2).
        assert list(syndrome) == [0, 1, 1, 0]


class TestLutConstruction:
    @pytest.mark.parametrize(
        "matrix", [X_CHECK_MATRIX, Z_CHECK_MATRIX, HAMMING_CHECK_MATRIX]
    )
    def test_lut_covers_all_syndromes(self, matrix):
        lut = build_lut(matrix)
        assert len(lut) == 2 ** matrix.shape[0]

    @pytest.mark.parametrize(
        "matrix", [X_CHECK_MATRIX, Z_CHECK_MATRIX, HAMMING_CHECK_MATRIX]
    )
    def test_lut_entries_reproduce_their_syndrome(self, matrix):
        lut = build_lut(matrix)
        for packed, error in lut.items():
            syndrome = syndrome_of(matrix, error.astype(np.uint8))
            assert pack_syndrome(syndrome) == packed

    def test_lut_entries_are_minimum_weight(self):
        """No error of lower weight may share a stored syndrome."""
        lut = build_lut(Z_CHECK_MATRIX)
        for packed, stored in lut.items():
            weight = int(stored.sum())
            for lower_weight in range(weight):
                for support in itertools.combinations(
                    range(9), lower_weight
                ):
                    error = np.zeros(9, dtype=np.uint8)
                    error[list(support)] = 1
                    assert (
                        pack_syndrome(syndrome_of(Z_CHECK_MATRIX, error))
                        != packed
                    )

    def test_trivial_syndrome_maps_to_no_error(self):
        decoder = LutDecoder(Z_CHECK_MATRIX)
        assert not decoder.decode([0, 0, 0, 0]).any()


def _logically_corrected(check_matrix, logical_support, error, correction):
    """Residual must be a stabilizer: trivial syndrome, even overlap
    with the logical operator (degenerate decoding is allowed)."""
    residual = (error.astype(bool) ^ correction).astype(np.uint8)
    if syndrome_of(check_matrix, residual).any():
        return False
    return residual[list(logical_support)].sum() % 2 == 0


class TestSingleErrorCorrection:
    """Distance 3: every weight-1 error must be corrected *up to a
    stabilizer* -- SC17 decoding is degenerate (e.g. Z on D0 and Z on
    D3 share a syndrome and differ by the stabilizer Z0Z3)."""

    @pytest.mark.parametrize("qubit", range(9))
    def test_sc17_x_errors(self, qubit):
        decoder = LutDecoder(Z_CHECK_MATRIX)
        error = np.zeros(9, dtype=np.uint8)
        error[qubit] = 1
        correction = decoder.decode(syndrome_of(Z_CHECK_MATRIX, error))
        # X residuals must commute with Z_L = Z0 Z4 Z8.
        assert _logically_corrected(
            Z_CHECK_MATRIX, (0, 4, 8), error, correction
        )

    @pytest.mark.parametrize("qubit", range(9))
    def test_sc17_z_errors(self, qubit):
        decoder = LutDecoder(X_CHECK_MATRIX)
        error = np.zeros(9, dtype=np.uint8)
        error[qubit] = 1
        correction = decoder.decode(syndrome_of(X_CHECK_MATRIX, error))
        # Z residuals must commute with X_L = X2 X4 X6.
        assert _logically_corrected(
            X_CHECK_MATRIX, (2, 4, 6), error, correction
        )

    @pytest.mark.parametrize("qubit", range(7))
    def test_steane_errors(self, qubit):
        decoder = LutDecoder(HAMMING_CHECK_MATRIX)
        error = np.zeros(7, dtype=np.uint8)
        error[qubit] = 1
        correction = decoder.decode(
            syndrome_of(HAMMING_CHECK_MATRIX, error)
        )
        assert not (error.astype(bool) ^ correction).any()


class TestTwoLutDecoder:
    def test_independent_decoding(self):
        decoder = TwoLutDecoder(X_CHECK_MATRIX, Z_CHECK_MATRIX)
        # X error on D4 -> only the Z syndrome fires.
        x_corr, z_corr = decoder.decode([0, 0, 0, 0], [0, 1, 1, 0])
        assert list(np.flatnonzero(x_corr)) == [4]
        assert not z_corr.any()
        # Z error on D4 -> only the X syndrome fires.
        x_corr, z_corr = decoder.decode([1, 0, 1, 0], [0, 0, 0, 0])
        assert list(np.flatnonzero(z_corr)) == [4]
        assert not x_corr.any()

    @given(st.integers(0, 8), st.integers(0, 8))
    @settings(max_examples=30, deadline=None)
    def test_y_errors_fully_corrected(self, x_qubit, z_qubit):
        decoder = TwoLutDecoder(X_CHECK_MATRIX, Z_CHECK_MATRIX)
        x_error = np.zeros(9, dtype=np.uint8)
        x_error[x_qubit] = 1
        z_error = np.zeros(9, dtype=np.uint8)
        z_error[z_qubit] = 1
        x_syndrome = syndrome_of(X_CHECK_MATRIX, z_error)
        z_syndrome = syndrome_of(Z_CHECK_MATRIX, x_error)
        x_corr, z_corr = decoder.decode(x_syndrome, z_syndrome)
        assert _logically_corrected(
            Z_CHECK_MATRIX, (0, 4, 8), x_error, x_corr
        )
        assert _logically_corrected(
            X_CHECK_MATRIX, (2, 4, 6), z_error, z_corr
        )


class TestCorrectionOperations:
    def test_xz_combines_into_y(self):
        x_corr = np.array([1, 0, 1], dtype=bool)
        z_corr = np.array([1, 1, 0], dtype=bool)
        gates = correction_operations(x_corr, z_corr, [10, 11, 12])
        assert gates == [("y", 10), ("z", 11), ("x", 12)]

    def test_empty_corrections(self):
        gates = correction_operations(
            np.zeros(2, dtype=bool), np.zeros(2, dtype=bool), [0, 1]
        )
        assert gates == []
