"""Tests for the statistics, analytic and schedule modules."""

import math

import numpy as np
import pytest

from repro.experiments.analytic import (
    ImprovementBound,
    approximate_ler,
    format_upper_bound_table,
    relative_improvement_upper_bound,
    upper_bound_series,
    window_time_slots,
)
from repro.experiments.ler import LerResult
from repro.experiments.schedule import (
    ScheduleParameters,
    compare_schedules,
)
from repro.experiments.stats import (
    compare_point,
    mean_rho,
    pseudo_threshold,
    significant_fraction,
    summarize,
)


def make_result(per, pf, windows, errors):
    return LerResult(
        physical_error_rate=per,
        error_kind="x",
        use_pauli_frame=pf,
        windows=windows,
        logical_errors=errors,
    )


class TestSummaries:
    def test_mean_and_std(self):
        results = [
            make_result(1e-3, False, 1000, 10),
            make_result(1e-3, False, 2000, 10),
        ]
        summary = summarize(results)
        assert summary.mean_ler == pytest.approx((0.01 + 0.005) / 2)
        assert summary.std_ler > 0

    def test_window_cov_matches_definition(self):
        results = [
            make_result(1e-3, False, w, 10) for w in (900, 1000, 1100)
        ]
        summary = summarize(results)
        counts = np.array([900.0, 1000.0, 1100.0])
        expected = counts.std(ddof=1) / counts.mean()
        assert summary.window_cov == pytest.approx(expected)

    def test_mixed_configurations_rejected(self):
        with pytest.raises(ValueError):
            summarize(
                [
                    make_result(1e-3, False, 100, 1),
                    make_result(2e-3, False, 100, 1),
                ]
            )
        with pytest.raises(ValueError):
            summarize([])


class TestComparison:
    def test_identical_samples_not_significant(self):
        without = [make_result(1e-3, False, w, 10) for w in (990, 1010, 1000)]
        withf = [make_result(1e-3, True, w, 10) for w in (990, 1010, 1000)]
        comparison = compare_point(without, withf)
        assert comparison.delta_ler == pytest.approx(0.0)
        assert not comparison.significant
        assert comparison.rho_paired == pytest.approx(1.0)
        assert comparison.delta_within_sigma

    def test_wildly_different_samples_are_significant(self):
        without = [
            make_result(1e-3, False, w, 10) for w in (100, 101, 99, 100)
        ]
        withf = [
            make_result(1e-3, True, w, 10)
            for w in (10_000, 10_100, 9_900, 10_000)
        ]
        comparison = compare_point(without, withf)
        assert comparison.significant
        assert comparison.delta_ler > 0

    def test_per_mismatch_rejected(self):
        without = [make_result(1e-3, False, 100, 10)] * 2
        withf = [make_result(2e-3, True, 100, 10)] * 2
        with pytest.raises(ValueError):
            compare_point(without, withf)

    def test_aggregates(self):
        without = [make_result(1e-3, False, w, 10) for w in (990, 1010)]
        withf = [make_result(1e-3, True, w, 10) for w in (990, 1010)]
        comparison = compare_point(without, withf)
        assert mean_rho([comparison]) == comparison.rho_independent
        assert significant_fraction([comparison]) in (0.0, 1.0)
        assert significant_fraction([]) == 0.0


class TestPseudoThreshold:
    def test_crossing_detected(self):
        per = [1e-4, 3e-4, 1e-3]
        ler = [3e-5, 3e-4, 4e-3]  # crosses y=x at 3e-4
        crossing = pseudo_threshold(per, ler)
        assert crossing == pytest.approx(3e-4, rel=0.05)

    def test_no_crossing_returns_none(self):
        assert pseudo_threshold([1e-3, 1e-2], [1e-2, 1e-1]) is None

    def test_unsorted_input_handled(self):
        per = [1e-3, 1e-4, 3e-4]
        ler = [4e-3, 3e-5, 3e-4]
        assert pseudo_threshold(per, ler) == pytest.approx(3e-4, rel=0.05)


class TestAnalyticModel:
    def test_window_time_slots_eq_5_6(self):
        assert window_time_slots(3, with_pauli_frame=False) == 17
        assert window_time_slots(3, with_pauli_frame=True) == 16
        assert window_time_slots(5, with_pauli_frame=False) == 33
        assert (
            window_time_slots(3, False, corrections_pending=False) == 16
        )
        with pytest.raises(ValueError):
            window_time_slots(1, False)

    def test_upper_bound_eq_5_12(self):
        """Fig. 5.27 values: 1/((d-1)*8+1)."""
        assert relative_improvement_upper_bound(3) == pytest.approx(
            1 / 17
        )
        assert relative_improvement_upper_bound(5) == pytest.approx(
            1 / 33
        )
        assert relative_improvement_upper_bound(11) == pytest.approx(
            1 / 81
        )

    def test_bound_decreases_with_distance(self):
        series = upper_bound_series(range(3, 13, 2))
        bounds = [bound for _d, bound in series]
        assert bounds == sorted(bounds, reverse=True)
        # Below 3% for d >= 5 (the paper's conclusion).
        assert all(bound < 0.031 for _d, bound in series[1:])

    def test_approximate_ler_ratio(self):
        without = approximate_ler(3, with_pauli_frame=False)
        withf = approximate_ler(3, with_pauli_frame=True)
        assert (without - withf) / without == pytest.approx(1 / 17)

    def test_improvement_bound_dataclass(self):
        bound = ImprovementBound.for_distance(3)
        assert bound.ts_window_without_frame == 17
        assert bound.ts_window_with_frame == 16
        assert bound.relative_improvement == pytest.approx(1 / 17)

    def test_format_table(self):
        text = format_upper_bound_table((3, 5))
        assert "5.88%" in text
        assert "3.03%" in text


class TestScheduleModel:
    def test_frame_always_saves_time(self):
        comparison = compare_schedules()
        assert comparison.time_saved > 0
        assert 0 < comparison.relative_time_saved < 1

    def test_decoder_deadline_relaxed(self):
        comparison = compare_schedules()
        assert comparison.decoder_deadline_relaxation > 1.0

    def test_saved_time_is_decode_plus_correction(self):
        params = ScheduleParameters(
            esm_duration=8,
            rounds_per_window=2,
            decode_duration=10,
            correction_duration=1,
            logical_op_duration=3,
        )
        comparison = compare_schedules(params)
        assert comparison.time_saved == pytest.approx(10 + 1)

    def test_idle_fraction(self):
        comparison = compare_schedules()
        assert comparison.without_frame.idle_fraction > 0
        assert comparison.with_frame.idle_fraction == pytest.approx(0.0)
