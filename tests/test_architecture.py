"""Tests for the QISA, symbol table, compiler and QCU (section 3.5)."""

import pytest

from repro.architecture import (
    AllocateLogical,
    Halt,
    LogicalMeasure,
    PhysicalGate,
    PhysicalMeasure,
    PhysicalReset,
    Program,
    QSymbolTable,
    QecSlot,
    QuantumControlUnit,
    RecordRotation,
    Sc17Compiler,
)
from repro.circuits import Circuit
from repro.qpdo import StabilizerCore


class TestSymbolTable:
    def test_allocation_assigns_tiles(self):
        table = QSymbolTable()
        first = table.allocate(0)
        second = table.allocate(1)
        assert first.physical_base == 0
        assert second.physical_base == 17
        assert first.data_qubits == list(range(9))
        assert first.ancilla_qubits == list(range(9, 17))

    def test_double_allocation_rejected(self):
        table = QSymbolTable()
        table.allocate(0)
        with pytest.raises(ValueError):
            table.allocate(0)

    def test_translation(self):
        table = QSymbolTable()
        table.allocate(0)
        table.allocate(3)
        assert table.translate(0) == 0
        assert table.translate(8) == 8
        # Logical qubit 3 owns virtual addresses 51..67.
        assert table.translate(3 * 17 + 4) == 17 + 4

    def test_dead_qubit_translation_rejected(self):
        table = QSymbolTable()
        table.allocate(0)
        table.deallocate(0)
        with pytest.raises(ValueError):
            table.translate(0)
        assert table.alive_entries() == []

    def test_unknown_qubit(self):
        table = QSymbolTable()
        with pytest.raises(KeyError):
            table.entry(5)

    def test_rotation_recording(self):
        table = QSymbolTable()
        entry = table.allocate(0)
        assert not entry.rotated
        table.record_rotation(0)
        assert entry.rotated
        table.record_rotation(0)
        assert not entry.rotated


class TestCompiler:
    def test_reset_emits_allocation_and_qec(self):
        logical = Circuit()
        logical.add("prep_z", 0)
        program = Sc17Compiler().compile(logical)
        kinds = [type(i).__name__ for i in program]
        assert kinds[0] == "AllocateLogical"
        assert kinds.count("PhysicalReset") == 9
        assert "QecSlot" in kinds
        assert kinds[-1] == "Halt"

    def test_x_chain_respects_compiled_rotation(self):
        logical = Circuit()
        logical.add("prep_z", 0)
        logical.add("h", 0)
        logical.add("x", 0)
        program = Sc17Compiler(
            insert_qec_between_gates=False
        ).compile(logical)
        x_gates = [
            i
            for i in program
            if isinstance(i, PhysicalGate) and i.gate == "x"
        ]
        # Rotated X_L acts on D0, D4, D8.
        assert sorted(i.qubits[0] for i in x_gates) == [0, 4, 8]

    def test_hadamard_emits_rotation_record(self):
        logical = Circuit()
        logical.add("prep_z", 0)
        logical.add("h", 0)
        program = Sc17Compiler().compile(logical)
        assert any(isinstance(i, RecordRotation) for i in program)

    def test_cnot_pairing_depends_on_rotations(self):
        logical = Circuit()
        logical.add("prep_z", 0)
        logical.add("prep_z", 1)
        logical.add("h", 0)
        logical.add("cnot", 0, 1)
        program = Sc17Compiler(
            insert_qec_between_gates=False
        ).compile(logical)
        cnots = [
            i
            for i in program
            if isinstance(i, PhysicalGate) and i.gate == "cnot"
        ]
        assert len(cnots) == 9
        # Different orientations -> rotated pairing (A0 -> B6).
        pairs = {
            (i.qubits[0] % 17, i.qubits[1] % 17) for i in cnots
        }
        assert (0, 6) in pairs

    def test_use_before_init_rejected(self):
        logical = Circuit()
        logical.add("x", 0)
        with pytest.raises(ValueError):
            Sc17Compiler().compile(logical)

    def test_unsupported_gate_rejected(self):
        logical = Circuit()
        logical.add("prep_z", 0)
        logical.add("t", 0)
        with pytest.raises(ValueError):
            Sc17Compiler().compile(logical)


class TestQcuExecution:
    def _run(self, logical, use_pauli_frame=True, seed=21, **compiler_kw):
        program = Sc17Compiler(**compiler_kw).compile(logical)
        qcu = QuantumControlUnit(
            StabilizerCore(seed=seed), use_pauli_frame=use_pauli_frame
        )
        return qcu.execute_program(program)

    @pytest.mark.parametrize("use_pauli_frame", [True, False])
    def test_x_h_h_measure(self, use_pauli_frame):
        logical = Circuit()
        logical.add("prep_z", 0)
        logical.add("x", 0)
        logical.add("h", 0)
        logical.add("h", 0)
        logical.add("measure", 0)
        trace = self._run(logical, use_pauli_frame=use_pauli_frame)
        assert list(trace.results.values()) == [1]
        assert trace.qec_slots_processed >= 1

    def test_cnot_program(self):
        logical = Circuit()
        logical.add("prep_z", 0)
        logical.add("prep_z", 1)
        logical.add("x", 0)
        logical.add("cnot", 0, 1)
        logical.add("measure", 0)
        logical.add("measure", 1)
        trace = self._run(logical)
        assert list(trace.results.values()) == [1, 1]

    def test_halt_stops_execution(self):
        program = Program()
        program.emit(Halt())
        program.emit(AllocateLogical(0))  # must never run
        qcu = QuantumControlUnit(StabilizerCore(seed=0))
        trace = qcu.execute_program(program)
        assert trace.instructions_executed == 1
        assert qcu.symbol_table.alive_entries() == []

    def test_physical_instructions(self):
        program = Program()
        program.emit(AllocateLogical(0))
        program.emit(PhysicalReset(0))
        program.emit(PhysicalGate("x", (0,)))
        program.emit(PhysicalMeasure(0, tag="bit"))
        program.emit(PhysicalMeasure(1))
        program.emit(Halt())
        qcu = QuantumControlUnit(StabilizerCore(seed=0))
        trace = qcu.execute_program(program)
        assert trace.results["bit"] == 1
        assert trace.anonymous_results == [0]

    def test_unknown_instruction_rejected(self):
        class Bogus:
            pass

        program = Program()
        program.emit(AllocateLogical(0))
        program.emit(Bogus())
        qcu = QuantumControlUnit(StabilizerCore(seed=0))
        with pytest.raises(TypeError):
            qcu.execute_program(program)

    def test_qec_slot_corrects_injected_error(self):
        program = Program()
        program.emit(AllocateLogical(0))
        for data in range(9):
            program.emit(PhysicalReset(data))
        program.emit(QecSlot(1))
        # Inject a bit-flip as a physical instruction, then let QEC fix
        # it before the logical readout.
        program.emit(PhysicalGate("x", (4,)))
        program.emit(QecSlot(1))
        program.emit(LogicalMeasure(0, tag="m"))
        program.emit(Halt())
        qcu = QuantumControlUnit(
            StabilizerCore(seed=2), use_pauli_frame=False
        )
        trace = qcu.execute_program(program)
        assert trace.results["m"] == 0
        assert trace.corrections_commanded >= 1
