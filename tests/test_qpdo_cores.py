"""Tests for the Core interface and the two simulation cores."""

import pytest

from repro.circuits import Circuit
from repro.qpdo import (
    StabilizerCore,
    StateVectorCore,
    UnsupportedFeatureError,
)
from repro.sim import BinaryValue


@pytest.fixture(params=["stabilizer", "statevector"])
def core(request):
    if request.param == "stabilizer":
        return StabilizerCore(seed=3)
    return StateVectorCore(seed=3)


class TestRegister:
    def test_createqubit_returns_first_index(self, core):
        assert core.createqubit(2) == 0
        assert core.createqubit(3) == 2
        assert core.num_qubits == 5

    def test_new_qubits_start_in_zero(self, core):
        core.createqubit(2)
        state = core.getstate()
        assert state[0] is BinaryValue.ZERO
        assert state[1] is BinaryValue.ZERO

    def test_removequbit(self, core):
        core.createqubit(3)
        core.removequbit(2)
        assert core.num_qubits == 1
        with pytest.raises(ValueError):
            core.removequbit(5)

    def test_out_of_range_circuit_rejected(self, core):
        core.createqubit(1)
        circuit = Circuit()
        circuit.add("h", 3)
        with pytest.raises(ValueError):
            core.add(circuit)


class TestExecution:
    def test_measurement_results_keyed_by_uid(self, core):
        core.createqubit(2)
        circuit = Circuit()
        circuit.add("x", 0)
        first = circuit.add("measure", 0)
        second = circuit.add("measure", 1)
        result = core.run(circuit)
        assert result.result_of(first) == 1
        assert result.result_of(second) == 0
        assert result.signed_result_of(first) == -1
        assert result.signed_result_of(second) == 1

    def test_queue_drains_on_execute(self, core):
        core.createqubit(1)
        circuit = Circuit()
        circuit.add("x", 0)
        core.add(circuit)
        core.execute()
        # Second execute must be a no-op (queue empty).
        empty = core.execute()
        assert empty.measurements == {}

    def test_state_tracking(self, core):
        core.createqubit(2)
        circuit = Circuit()
        circuit.add("h", 0)
        circuit.add("measure", 1)
        core.run(circuit)
        state = core.getstate()
        assert state[0] is BinaryValue.UNKNOWN
        assert state[1] in (BinaryValue.ZERO, BinaryValue.ONE)

    def test_identity_gate_keeps_known_state(self, core):
        core.createqubit(1)
        circuit = Circuit()
        circuit.add("i", 0)
        core.run(circuit)
        assert core.getstate()[0] is BinaryValue.ZERO

    def test_prep_resets(self, core):
        core.createqubit(1)
        circuit = Circuit()
        circuit.add("x", 0)
        circuit.add("prep_z", 0)
        measure = circuit.add("measure", 0)
        result = core.run(circuit)
        assert result.result_of(measure) == 0

    def test_results_merge(self, core):
        core.createqubit(1)
        first_circuit = Circuit()
        first = first_circuit.add("measure", 0)
        result = core.run(first_circuit)
        second_circuit = Circuit()
        second = second_circuit.add("measure", 0)
        result.merge(core.run(second_circuit))
        assert first.uid in result.measurements
        assert second.uid in result.measurements


class TestCapabilities:
    def test_stabilizer_rejects_quantum_state(self):
        core = StabilizerCore(seed=0)
        with pytest.raises(UnsupportedFeatureError):
            core.getquantumstate()

    def test_stabilizer_rejects_t_gate(self):
        core = StabilizerCore(seed=0)
        core.createqubit(1)
        circuit = Circuit()
        circuit.add("t", 0)
        core.add(circuit)
        with pytest.raises(ValueError):
            core.execute()

    def test_statevector_supports_quantum_state(self):
        core = StateVectorCore(seed=0)
        core.createqubit(2)
        circuit = Circuit()
        circuit.add("h", 0)
        core.run(circuit)
        state = core.getquantumstate()
        assert state.num_qubits == 2
        assert state.probability(0) == pytest.approx(0.5)

    def test_statevector_quantum_state_requires_drained_queue(self):
        core = StateVectorCore(seed=0)
        core.createqubit(1)
        circuit = Circuit()
        circuit.add("h", 0)
        core.add(circuit)
        with pytest.raises(UnsupportedFeatureError):
            core.getquantumstate()

    def test_quantum_state_hides_removed_qubits(self):
        core = StateVectorCore(seed=0)
        core.createqubit(3)
        core.removequbit(1)
        assert core.getquantumstate().num_qubits == 2
