"""Tests for the LER experiment harness (paper section 5.3).

Fast deterministic checks (error injection) plus scaled-down
statistical runs; the full paper-scale sweeps live in benchmarks/.
"""

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.circuits.operation import Operation
from repro.experiments.ler import (
    LerExperiment,
    build_ler_stack,
    run_ler_point,
)


def inject_error(experiment, kind, qubit):
    """Push a flagged physical error through the stack."""
    circuit = Circuit("inject")
    slot = circuit.new_slot()
    slot.add(Operation(kind, (qubit,), is_error=True))
    experiment.stack.top.add(circuit)
    experiment.stack.top.execute()


@pytest.fixture(params=[False, True], ids=["no_frame", "with_frame"])
def noiseless(request):
    experiment = LerExperiment(
        0.0,
        use_pauli_frame=request.param,
        max_logical_errors=1,
        max_windows=1,
        seed=12,
    )
    experiment.corrections_commanded = 0
    experiment.initialize_logical_qubit()
    return experiment


class TestStackConstruction:
    def test_stack_shape_with_frame(self):
        stack = build_ler_stack(1e-3, use_pauli_frame=True, seed=0)
        assert stack.pauli_frame is not None
        assert stack.core.num_qubits == 18  # 17 + probe ancilla
        assert stack.error_layer.active_qubits == set(range(17))

    def test_stack_shape_without_frame(self):
        stack = build_ler_stack(1e-3, use_pauli_frame=False, seed=0)
        assert stack.pauli_frame is None
        assert stack.top is stack.counter_above

    def test_invalid_error_kind(self):
        with pytest.raises(ValueError):
            LerExperiment(0.1, True, error_kind="y")


class TestNoiselessBehaviour:
    def test_clean_after_init(self, noiseless):
        assert noiseless._no_observable_errors()
        assert not noiseless.check_logical_error()

    def test_window_keeps_clean_state(self, noiseless):
        for _ in range(3):
            noiseless.execute_window()
            assert noiseless._no_observable_errors()
            assert not noiseless.check_logical_error()

    def test_zero_noise_run_counts_no_errors(self):
        result = LerExperiment(
            0.0,
            use_pauli_frame=False,
            max_logical_errors=1,
            max_windows=15,
            seed=1,
        ).run()
        assert result.windows == 15
        assert result.logical_errors == 0
        assert result.clean_windows == 15
        assert result.logical_error_rate == 0.0


class TestErrorInjection:
    @pytest.mark.parametrize("qubit", [0, 4, 8])
    def test_single_x_error_corrected(self, noiseless, qubit):
        inject_error(noiseless, "x", qubit)
        assert not noiseless._no_observable_errors()
        noiseless.execute_window()
        assert noiseless._no_observable_errors()
        assert not noiseless.check_logical_error()

    @pytest.mark.parametrize("qubit", [1, 4, 7])
    def test_single_z_error_corrected(self, noiseless, qubit):
        inject_error(noiseless, "z", qubit)
        noiseless.execute_window()
        assert noiseless._no_observable_errors()
        assert not noiseless.check_logical_error()

    def test_single_y_error_corrected(self, noiseless):
        inject_error(noiseless, "y", 4)
        noiseless.execute_window()
        assert noiseless._no_observable_errors()
        assert not noiseless.check_logical_error()

    def test_logical_x_chain_counts_as_logical_error(self, noiseless):
        if noiseless.error_kind != "x":
            pytest.skip("probe watches X_L only in x-kind runs")
        for qubit in (2, 4, 6):
            inject_error(noiseless, "x", qubit)
        noiseless.execute_window()
        assert noiseless._no_observable_errors()
        assert noiseless.check_logical_error()
        # ... and the flip is only counted once.
        assert not noiseless.check_logical_error()

    def test_z_kind_probe_detects_logical_z(self):
        experiment = LerExperiment(
            0.0,
            use_pauli_frame=False,
            error_kind="z",
            max_logical_errors=1,
            max_windows=1,
            seed=13,
        )
        experiment.corrections_commanded = 0
        experiment.initialize_logical_qubit()
        for qubit in (0, 4, 8):  # Z_L chain in normal orientation
            inject_error(experiment, "z", qubit)
        experiment.execute_window()
        assert experiment._no_observable_errors()
        assert experiment.check_logical_error()

    def test_z_kind_ignores_x_logical(self):
        experiment = LerExperiment(
            0.0,
            use_pauli_frame=False,
            error_kind="z",
            max_logical_errors=1,
            max_windows=1,
            seed=13,
        )
        experiment.corrections_commanded = 0
        experiment.initialize_logical_qubit()
        for qubit in (2, 4, 6):
            inject_error(experiment, "x", qubit)
        experiment.execute_window()
        assert not experiment.check_logical_error()


class TestStatisticalRuns:
    def test_run_terminates_at_error_budget(self):
        result = LerExperiment(
            8e-3,
            use_pauli_frame=False,
            max_logical_errors=3,
            seed=3,
        ).run()
        assert result.logical_errors == 3
        assert 0 < result.logical_error_rate <= 1

    def test_frame_statistics_only_with_frame(self):
        with_frame = LerExperiment(
            8e-3, True, max_logical_errors=2, seed=4
        ).run()
        without = LerExperiment(
            8e-3, False, max_logical_errors=2, seed=4
        ).run()
        assert with_frame.frame_statistics is not None
        assert without.frame_statistics is None

    def test_savings_bounded_by_correction_slot_share(self):
        """Fig. 5.26: at most 1 slot in 17 can ever be filtered."""
        result = LerExperiment(
            1e-2, True, max_logical_errors=4, seed=5
        ).run()
        assert 0.0 < result.saved_slots_fraction <= 1.0 / 17.0 + 1e-9
        assert 0.0 < result.saved_operations_fraction < 0.05

    def test_run_ler_point_samples(self):
        results = run_ler_point(
            8e-3,
            use_pauli_frame=False,
            samples=3,
            max_logical_errors=2,
            seed=6,
        )
        assert len(results) == 3
        assert len({r.windows for r in results}) >= 1

    def test_higher_per_gives_higher_ler(self):
        low = LerExperiment(
            1.5e-3, False, max_logical_errors=4, seed=7
        ).run()
        high = LerExperiment(
            1.2e-2, False, max_logical_errors=4, seed=7
        ).run()
        assert high.logical_error_rate > low.logical_error_rate
