"""Tests for the space-time decoder and the phenomenological model."""

import numpy as np
import pytest

from repro.codes.rotated import RotatedSurfaceCode
from repro.decoders import boundary_qubits_for, syndrome_of
from repro.decoders.spacetime import SpaceTimeMatchingDecoder
from repro.experiments.phenomenological import (
    PhenomenologicalSimulator,
    format_phenomenological_table,
    run_phenomenological_scaling,
)


@pytest.fixture(scope="module")
def decoder3():
    code = RotatedSurfaceCode(3)
    return code, SpaceTimeMatchingDecoder(
        code.z_check_matrix, boundary_qubits_for(code, "z")
    )


class TestDetectionEvents:
    def test_no_events_for_constant_history(self, decoder3):
        _code, decoder = decoder3
        history = [[0, 0, 0, 0]] * 4
        assert decoder.detection_events(history) == []

    def test_persistent_error_fires_once(self, decoder3):
        code, decoder = decoder3
        error = np.eye(code.num_data, dtype=np.uint8)[4]
        syndrome = list(syndrome_of(code.z_check_matrix, error))
        history = [[0, 0, 0, 0], syndrome, syndrome, syndrome]
        events = decoder.detection_events(history)
        # One event per violated check, all in round 1.
        assert all(round_index == 1 for round_index, _c in events)
        assert len(events) == int(sum(syndrome))

    def test_measurement_blip_fires_twice(self, decoder3):
        _code, decoder = decoder3
        history = [[0, 0, 0, 0], [1, 0, 0, 0], [0, 0, 0, 0]]
        events = decoder.detection_events(history)
        assert events == [(1, 0), (2, 0)]


class TestSpaceTimeDecoding:
    def test_data_error_corrected(self, decoder3):
        code, decoder = decoder3
        error = np.eye(code.num_data, dtype=np.uint8)[4]
        syndrome = list(syndrome_of(code.z_check_matrix, error))
        history = [syndrome, syndrome, syndrome]
        correction = decoder.decode_history(history)
        residual = error.astype(bool) ^ correction
        assert not syndrome_of(
            code.z_check_matrix, residual.astype(np.uint8)
        ).any()
        z_mask = np.zeros(code.num_data, dtype=bool)
        for qubit in code.logical_z_support():
            z_mask[qubit] = True
        assert int((residual & z_mask).sum()) % 2 == 0

    def test_measurement_blip_corrects_nothing(self, decoder3):
        """A lone misread pairs with itself in time: no data flips."""
        _code, decoder = decoder3
        history = [[0, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 0]]
        correction = decoder.decode_history(history)
        assert not correction.any()

    def test_empty_history(self, decoder3):
        _code, decoder = decoder3
        assert not decoder.decode_history([]).any()

    def test_error_in_last_round_still_corrected(self, decoder3):
        """An error appearing only in the (reliable) final round must
        still be corrected -- boundary-in-time is not a free escape."""
        code, decoder = decoder3
        error = np.eye(code.num_data, dtype=np.uint8)[0]
        syndrome = list(syndrome_of(code.z_check_matrix, error))
        history = [[0, 0, 0, 0], [0, 0, 0, 0], syndrome]
        correction = decoder.decode_history(history)
        residual = error.astype(bool) ^ correction
        assert not syndrome_of(
            code.z_check_matrix, residual.astype(np.uint8)
        ).any()


class TestPhenomenologicalSimulator:
    def test_zero_noise(self):
        simulator = PhenomenologicalSimulator(3)
        result = simulator.estimate_ler(
            0.0, trials=20, rng=np.random.default_rng(0)
        )
        assert result.logical_errors == 0

    def test_small_measurement_noise_is_harmless(self):
        simulator = PhenomenologicalSimulator(3)
        rng = np.random.default_rng(1)
        failures = sum(
            simulator.run_trial(0.0, 0.02, rng) for _ in range(200)
        )
        assert failures == 0

    def test_distance_ordering_below_threshold(self):
        results = run_phenomenological_scaling(
            distances=(3, 5),
            per_values=(0.01,),
            trials=400,
            seed=7,
        )
        assert (
            results[5][0].logical_error_rate
            <= results[3][0].logical_error_rate
        )

    def test_monotone_in_noise(self):
        simulator = PhenomenologicalSimulator(3)
        rng = np.random.default_rng(2)
        low = simulator.estimate_ler(0.01, trials=400, rng=rng)
        high = simulator.estimate_ler(0.08, trials=400, rng=rng)
        assert high.logical_error_rate > low.logical_error_rate

    def test_default_q_equals_p(self):
        simulator = PhenomenologicalSimulator(3)
        result = simulator.estimate_ler(
            0.03, trials=10, rng=np.random.default_rng(3)
        )
        assert result.measurement_error_rate == 0.03

    def test_format_table(self):
        results = run_phenomenological_scaling(
            distances=(3,), per_values=(0.02,), trials=20, seed=1
        )
        assert "LER(d=3)" in format_phenomenological_table(results)
