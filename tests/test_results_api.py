"""Tests for the unified machine-readable results API."""

import json
import warnings
from dataclasses import asdict

import numpy as np
import pytest

from repro.experiments.results import (
    RESULT_KINDS,
    ArmReport,
    BatchCounts,
    LerReport,
    ResultBase,
    RunResult,
    ShardResult,
    SweepPointResult,
    SweepResult,
    VerifyReport,
    result_from_json,
    result_from_json_dict,
)
from repro.experiments.stats import compare_point
from repro.pauliframe.unit import FrameStatistics
from repro.qpdo.counter_layer import StreamCounts


def _run(errors=2, windows=50, use_frame=False, with_stats=False):
    return RunResult(
        physical_error_rate=5e-3,
        error_kind="x",
        use_pauli_frame=use_frame,
        windows=windows,
        logical_errors=errors,
        clean_windows=windows - errors,
        corrections_commanded=7,
        frame_statistics=(
            FrameStatistics(
                operations_in=100,
                operations_out=90,
                slots_in=40,
                slots_out=38,
                pauli_gates_filtered=10,
            )
            if with_stats
            else None
        ),
        counts_above=StreamCounts(operations=100, slots=40),
        counts_below=StreamCounts(operations=90, slots=38),
    )


class TestRoundTrips:
    def test_run_result_round_trip(self):
        original = _run(with_stats=True, use_frame=True)
        rebuilt = RunResult.from_json(original.to_json())
        assert rebuilt == original
        assert rebuilt.logical_error_rate == pytest.approx(2 / 50)
        assert rebuilt.saved_slots_fraction == pytest.approx(2 / 40)

    def test_batch_counts_round_trip(self):
        original = BatchCounts(
            physical_error_rate=1e-2,
            error_kind="z",
            use_pauli_frame=True,
            windows=20,
            logical_errors=np.array([1, 0, 2]),
            clean_windows=np.array([19, 20, 18]),
            corrections_commanded=np.array([3, 4, 5]),
        )
        rebuilt = BatchCounts.from_json(original.to_json())
        assert rebuilt.num_shots == 3
        assert rebuilt.total_errors == 3
        assert rebuilt.total_windows == 60
        np.testing.assert_array_equal(
            rebuilt.logical_errors, original.logical_errors
        )
        assert len(rebuilt.to_results()) == 3

    def test_shard_result_round_trip(self):
        original = ShardResult(
            point_index=1,
            physical_error_rate=6e-3,
            use_pauli_frame=True,
            shard_index=2,
            shots=2,
            error_kind="x",
            mode="batch",
            windows=25,
            shot_errors=[1, 0],
            shot_windows=[25, 25],
            shot_clean=[24, 25],
            shot_corrections=[5, 6],
        )
        rebuilt = ShardResult.from_json(original.to_json())
        assert rebuilt == original
        assert rebuilt.total_errors == 1
        assert rebuilt.total_windows == 50

    def test_shard_checkpoint_byte_format_is_pinned(self):
        """The historical ShardRecord line format must not drift."""
        shard = ShardResult(
            point_index=0,
            physical_error_rate=5e-3,
            use_pauli_frame=False,
            shard_index=0,
            shots=1,
            error_kind="x",
            mode="loop",
            windows=0,
            shot_errors=[2],
            shot_windows=[40],
            shot_clean=[38],
            shot_corrections=[9],
        )
        expected = json.dumps(
            {"kind": "shard", **asdict(shard)}, sort_keys=True
        )
        assert shard.to_json() == expected

    def test_sweep_round_trip(self):
        without = [_run(), _run(errors=3)]
        with_frame = [
            _run(use_frame=True, with_stats=True),
            _run(errors=1, use_frame=True, with_stats=True),
        ]
        point = SweepPointResult(
            physical_error_rate=5e-3,
            without_frame=without,
            with_frame=with_frame,
            comparison=compare_point(without, with_frame),
        )
        sweep = SweepResult(error_kind="x", points=[point])
        rebuilt = SweepResult.from_json(sweep.to_json())
        assert rebuilt.per_values() == [5e-3]
        assert rebuilt.points[0].mean_ler_without == pytest.approx(
            point.mean_ler_without
        )
        assert rebuilt.points[
            0
        ].comparison.rho_independent == pytest.approx(
            point.comparison.rho_independent
        )
        # Serialized form is stable under a second round trip.
        assert rebuilt.to_json() == sweep.to_json()


class TestDispatch:
    def test_every_registered_kind_dispatches(self):
        expected = {
            "run",
            "batch_counts",
            "shard",
            "sweep_point",
            "sweep",
            "verify_report",
            "ler_arm",
            "ler_report",
            "sweep_report",
            "distance_report",
            "phenomenological_report",
            "memory_report",
            "bound_report",
            "schedule_report",
            "census_report",
            "inject_report",
            "trace_report",
        }
        assert expected <= set(RESULT_KINDS)
        for kind, klass in RESULT_KINDS.items():
            assert issubclass(klass, ResultBase)
            assert klass.kind == kind

    def test_result_from_json_dispatches_on_kind(self):
        original = _run()
        rebuilt = result_from_json(original.to_json())
        assert isinstance(rebuilt, RunResult)
        assert rebuilt == original

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown result kind"):
            result_from_json_dict({"kind": "no_such_kind"})

    def test_kind_mismatch_raises(self):
        payload = _run().to_json()
        with pytest.raises(ValueError, match="expected kind"):
            VerifyReport.from_json(payload)

    def test_nested_report_round_trip(self):
        report = LerReport(
            physical_error_rate=5e-3,
            error_kind="x",
            mode="parallel",
            seed=0,
            arms=[
                ArmReport(
                    use_pauli_frame=False,
                    logical_errors=10,
                    windows=500,
                    logical_error_rate=0.02,
                    corrections_commanded=40,
                    wilson_low=0.01,
                    wilson_high=0.03,
                    committed_shards=4,
                    num_shards=4,
                )
            ],
            committed_shards=4,
            executed_shards=4,
            resumed_shards=0,
        )
        rebuilt = result_from_json(report.to_json())
        assert isinstance(rebuilt, LerReport)
        assert isinstance(rebuilt.arms[0], ArmReport)
        assert rebuilt == report


class TestDeprecatedAliases:
    @pytest.mark.parametrize(
        "module, old_name, new_name",
        [
            ("repro.experiments.ler", "LerResult", "RunResult"),
            (
                "repro.experiments.ler",
                "BatchedLerCounts",
                "BatchCounts",
            ),
            (
                "repro.experiments.sweep",
                "SweepPoint",
                "SweepPointResult",
            ),
            ("repro.experiments.sweep", "LerSweep", "SweepResult"),
            (
                "repro.experiments.parallel",
                "ShardRecord",
                "ShardResult",
            ),
            ("repro.experiments", "LerResult", "RunResult"),
            ("repro.experiments", "BatchedLerCounts", "BatchCounts"),
            ("repro.experiments", "SweepPoint", "SweepPointResult"),
            ("repro.experiments", "LerSweep", "SweepResult"),
            ("repro.experiments", "ShardRecord", "ShardResult"),
        ],
    )
    def test_old_names_warn_and_alias(
        self, module, old_name, new_name
    ):
        import importlib

        import repro.experiments.results as results

        imported = importlib.import_module(module)
        with pytest.warns(DeprecationWarning, match=new_name):
            alias = getattr(imported, old_name)
        assert alias is getattr(results, new_name)

    def test_new_names_do_not_warn(self):
        import repro.experiments as experiments

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert experiments.RunResult is RunResult
            assert experiments.ShardResult is ShardResult

    def test_unknown_attribute_still_raises(self):
        import repro.experiments.ler as ler

        with pytest.raises(AttributeError):
            ler.NoSuchName
