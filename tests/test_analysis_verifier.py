"""Tests for the circuit pre-flight verifier (repro.analysis)."""

import numpy as np
import pytest

from repro.analysis import (
    CIRCUIT_CATALOG,
    FRAME_FORBID,
    FRAME_WARN,
    ROUTE_STABILIZER,
    ROUTE_STATE_VECTOR,
    build_catalog_circuit,
    catalog_names,
    inject_t_gate,
    verify_circuit,
)
from repro.analysis import findings as F
from repro.circuits.circuit import Circuit, TimeSlot
from repro.circuits.operation import op
from repro.circuits.random_circuits import (
    random_circuit,
    random_clifford_circuit,
)
from repro.circuits.workloads import all_workloads
from repro.gates.gateset import GateClass, GateInfo
from repro.qpdo.core import CAP_NON_CLIFFORD, CAP_QUANTUM_STATE
from repro.qpdo.cores import StabilizerCore, StateVectorCore


def codes(analysis, errors_only=False):
    pool = analysis.errors if errors_only else analysis.findings
    return [f.code for f in pool]


# ----------------------------------------------------------------------
# Property: every builder circuit in the repo passes pre-flight.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", catalog_names())
def test_catalog_circuits_pass_default_policy(name):
    analysis = verify_circuit(build_catalog_circuit(name))
    assert analysis.passed, codes(analysis, errors_only=True)


@pytest.mark.parametrize("name", sorted(all_workloads()))
def test_workloads_pass_default_policy(name):
    analysis = verify_circuit(all_workloads()[name])
    assert analysis.passed, codes(analysis, errors_only=True)


@pytest.mark.parametrize(
    "name",
    ["sc17-esm", "sc17-esm-serial", "sc17-esm-z-only", "steane-esm"],
)
def test_esm_rounds_are_clifford_stabilizer_and_frame_safe(name):
    """The acceptance scenario: ESM rounds verify clean end to end."""
    analysis = verify_circuit(
        build_catalog_circuit(name),
        target=StabilizerCore(seed=0),
        frame_policy=FRAME_FORBID,
    )
    assert analysis.is_clifford
    assert analysis.routing == ROUTE_STABILIZER
    assert analysis.frame_safe
    assert analysis.passed


def test_injected_t_gate_is_rejected_with_frame_finding():
    """The acceptance counter-scenario: T-tainted ESM fails."""
    tainted = inject_t_gate(build_catalog_circuit("sc17-esm"))
    analysis = verify_circuit(
        tainted,
        target=StabilizerCore(seed=0),
        frame_policy=FRAME_FORBID,
    )
    assert not analysis.passed
    assert not analysis.is_clifford
    assert analysis.routing == ROUTE_STATE_VECTOR
    assert not analysis.frame_safe
    error_codes = set(codes(analysis, errors_only=True))
    assert F.CIR_FRAME_COMMUTE in error_codes
    assert F.CIR_CAPABILITY in error_codes


def test_injected_t_gate_on_statevector_core_only_frame_error():
    tainted = inject_t_gate(build_catalog_circuit("sc17-esm"))
    analysis = verify_circuit(
        tainted,
        target=StateVectorCore(seed=0),
        frame_policy=FRAME_FORBID,
    )
    error_codes = set(codes(analysis, errors_only=True))
    assert error_codes == {F.CIR_FRAME_COMMUTE}


def test_frame_policy_warn_downgrades_frame_findings():
    tainted = inject_t_gate(build_catalog_circuit("sc17-esm"))
    analysis = verify_circuit(tainted, frame_policy=FRAME_WARN)
    assert analysis.passed  # only warnings left without a target
    assert not analysis.frame_safe
    assert F.CIR_FRAME_COMMUTE in {
        f.code for f in analysis.warnings
    }


# ----------------------------------------------------------------------
# Property: Clifford classification agrees with the gate set.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(5))
def test_clifford_classification_matches_gateclass(seed):
    rng = np.random.default_rng(seed)
    circuit = random_circuit(4, 30, rng=rng)
    analysis = verify_circuit(circuit)
    expected = all(
        operation.gate_class is not GateClass.NON_CLIFFORD
        for slot in circuit
        for operation in slot
    )
    assert analysis.is_clifford == expected
    assert analysis.routing == (
        ROUTE_STABILIZER if expected else ROUTE_STATE_VECTOR
    )


@pytest.mark.parametrize("seed", range(3))
def test_random_clifford_circuits_route_to_stabilizer(seed):
    rng = np.random.default_rng(seed)
    analysis = verify_circuit(random_clifford_circuit(4, 40, rng=rng))
    assert analysis.is_clifford
    assert analysis.routing == ROUTE_STABILIZER
    assert analysis.frame_safe
    assert analysis.passed


def test_census_counts_every_operation():
    circuit = build_catalog_circuit("bell")
    analysis = verify_circuit(circuit)
    assert sum(analysis.gate_census.values()) == sum(
        len(slot) for slot in circuit
    )
    assert analysis.num_operations == sum(
        len(slot) for slot in circuit
    )


# ----------------------------------------------------------------------
# Negative tests: one per finding code.
# ----------------------------------------------------------------------
def _bogus_operation():
    """An operation whose gate the library does not know.

    Operation validates at construction, so an unknown gate can only
    enter the IR through mutation (hand-built or rewritten circuits)
    -- exactly what the verifier defends against.
    """
    operation = op("h", 0)
    operation.info = GateInfo("warp", 1, GateClass.CLIFFORD)
    return operation


def test_cir001_unknown_gate():
    circuit = Circuit("broken")
    circuit.new_slot().add(_bogus_operation())
    analysis = verify_circuit(circuit)
    assert codes(analysis, errors_only=True) == [F.CIR_UNKNOWN_GATE]


def test_cir002_arity_mismatch():
    operation = op("h", 0)
    operation.qubits = (0, 1)
    circuit = Circuit("broken")
    slot = TimeSlot()
    slot.operations.append(operation)
    circuit.slots.append(slot)
    analysis = verify_circuit(circuit)
    assert codes(analysis, errors_only=True) == [F.CIR_ARITY]


def test_cir003_slot_conflict():
    circuit = Circuit("broken")
    slot = TimeSlot()
    # Bypass TimeSlot.add's own guard: hand-built IR.
    slot.operations.append(op("h", 0))
    slot.operations.append(op("x", 0))
    circuit.slots.append(slot)
    analysis = verify_circuit(circuit)
    assert F.CIR_SLOT_CONFLICT in codes(analysis, errors_only=True)


def test_cir003_duplicate_qubits_within_operation():
    operation = op("cnot", 0, 1)
    operation.qubits = (0, 0)
    circuit = Circuit("broken")
    slot = TimeSlot()
    slot.operations.append(operation)
    circuit.slots.append(slot)
    analysis = verify_circuit(circuit)
    assert F.CIR_SLOT_CONFLICT in codes(analysis, errors_only=True)


def test_cir004_use_after_measure_is_warning():
    circuit = Circuit("reuse")
    circuit.add("prep_z", 0)
    circuit.add("measure", 0)
    circuit.add("x", 0)
    analysis = verify_circuit(circuit)
    assert analysis.passed
    assert F.CIR_USE_AFTER_MEASURE in {
        f.code for f in analysis.warnings
    }


def test_cir005_bare_measurement_is_warning():
    circuit = Circuit("bare")
    circuit.add("measure", 3)
    analysis = verify_circuit(circuit)
    assert analysis.passed
    assert F.CIR_BARE_MEASURE in {f.code for f in analysis.warnings}


def test_cir006_dead_allocation_is_info():
    circuit = Circuit("dead")
    circuit.add("prep_z", 0)
    circuit.add("h", 1)
    analysis = verify_circuit(circuit)
    assert analysis.passed
    assert F.CIR_DEAD_ALLOCATION in codes(analysis)


def test_cir007_non_clifford_reported_once_per_gate_name():
    circuit = Circuit("tt")
    circuit.add("prep_z", 0)
    circuit.add("t", 0)
    circuit.add("t", 0)
    circuit.add("tdg", 0)
    analysis = verify_circuit(circuit)
    reported = [c for c in codes(analysis) if c == F.CIR_NON_CLIFFORD]
    assert len(reported) == 2  # t once, tdg once


def test_cir008_capability_mismatch_against_explicit_set():
    circuit = Circuit("t")
    circuit.add("prep_z", 0)
    circuit.add("t", 0)
    bad = verify_circuit(circuit, target=frozenset())
    assert codes(bad, errors_only=True) == [F.CIR_CAPABILITY]
    good = verify_circuit(
        circuit,
        target=frozenset({CAP_QUANTUM_STATE, CAP_NON_CLIFFORD}),
    )
    assert good.passed


def test_cir009_depends_on_initial_frame():
    circuit = Circuit("t-fragment")
    circuit.add("t", 0)
    unknown = verify_circuit(
        circuit, initial_frame="unknown", frame_policy=FRAME_FORBID
    )
    assert F.CIR_FRAME_COMMUTE in codes(unknown, errors_only=True)
    clean = verify_circuit(
        circuit, initial_frame="clean", frame_policy=FRAME_FORBID
    )
    assert clean.passed
    assert clean.frame_safe


def test_preparation_cleans_the_frame_for_non_clifford():
    circuit = Circuit("prep-t")
    circuit.add("prep_z", 0)
    circuit.add("t", 0)
    analysis = verify_circuit(circuit, frame_policy=FRAME_FORBID)
    assert analysis.frame_safe
    assert analysis.passed


def test_invalid_arguments_raise():
    circuit = Circuit("x")
    circuit.add("h", 0)
    with pytest.raises(ValueError):
        verify_circuit(circuit, initial_frame="dirty")
    with pytest.raises(ValueError):
        verify_circuit(circuit, frame_policy="maybe")


def test_analysis_json_dict_is_serializable_and_complete():
    import json

    tainted = inject_t_gate(build_catalog_circuit("steane-esm"))
    analysis = verify_circuit(tainted, frame_policy=FRAME_FORBID)
    payload = analysis.to_json_dict()
    json.dumps(payload, sort_keys=True)
    assert payload["passed"] == analysis.passed
    assert payload["frame_policy"] == FRAME_FORBID
    assert len(payload["findings"]) == len(analysis.findings)


def test_inject_t_gate_leaves_original_untouched():
    original = build_catalog_circuit("bell")
    before = sum(len(slot) for slot in original)
    tainted = inject_t_gate(original)
    assert sum(len(slot) for slot in original) == before
    assert sum(len(slot) for slot in tainted) == before + 1
    assert tainted.name == original.name + "+t"


def test_catalog_rejects_unknown_names():
    with pytest.raises(KeyError, match="sc17-esm"):
        build_catalog_circuit("no-such-circuit")
    assert set(catalog_names()) == set(CIRCUIT_CATALOG)
