"""Tests for logical state injection and the teleported T gate."""

import math

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.codes.surface17 import NinjaStarLayer
from repro.codes.surface17.injection import (
    expected_bloch_vector,
    inject_logical_state,
    injection_circuit,
    logical_bloch_vector,
    teleport_t_gate,
)
from repro.qpdo import StabilizerCore, StateVectorCore


def make_layer(seed=1, logical_qubits=1):
    core = StateVectorCore(seed=seed)
    layer = NinjaStarLayer(core)
    layer.createqubit(logical_qubits)
    return core, layer


class TestInjection:
    @pytest.mark.parametrize(
        "theta,phi",
        [
            (0.0, 0.0),
            (math.pi, 0.0),
            (math.pi / 2, 0.0),
            (math.pi / 2, math.pi / 2),
            (math.pi / 2, math.pi / 4),
            (1.234, -2.1),
        ],
    )
    def test_injected_bloch_vector_is_exact(self, theta, phi):
        _core, layer = make_layer(seed=11)
        inject_logical_state(layer, 0, theta, phi)
        observed = logical_bloch_vector(layer, 0)
        expected = expected_bloch_vector(theta, phi)
        assert np.allclose(observed, expected, atol=1e-8)

    def test_injected_state_is_in_codespace(self):
        """All stabilizers must hold exactly after the fixup."""
        core, layer = make_layer(seed=3)
        inject_logical_state(layer, 0, 1.0, 0.5)
        from repro.codes.surface17 import ALL_PLAQUETTES
        from repro.paulis import PauliString

        simulator = core.simulator
        data = layer.logical_qubits[0].data_qubits
        state = simulator.amplitudes
        for plaquette in ALL_PLAQUETTES:
            support = [data[q] for q in plaquette.data_qubits]
            transformed = simulator.copy()
            for physical in support:
                transformed.apply_gate(plaquette.basis, (physical,))
            overlap = np.vdot(state, transformed.amplitudes)
            assert overlap == pytest.approx(1.0, abs=1e-8)

    def test_injection_then_logical_gates(self):
        """X_L after injecting |+> must leave the state invariant."""
        _core, layer = make_layer(seed=5)
        inject_logical_state(layer, 0, math.pi / 2, 0.0)
        circuit = Circuit()
        circuit.add("x", 0)
        layer.run(circuit)
        observed = logical_bloch_vector(layer, 0)
        assert np.allclose(observed, (1.0, 0.0, 0.0), atol=1e-8)

    def test_injection_then_measurement_statistics(self):
        """Injected theta gives P(1) = sin^2(theta/2)."""
        theta = 2.0
        ones = 0
        shots = 40
        for shot in range(shots):
            _core, layer = make_layer(seed=1000 + shot)
            inject_logical_state(layer, 0, theta, 0.0)
            circuit = Circuit()
            measure = circuit.add("measure", 0)
            result = layer.run(circuit)
            ones += result.result_of(measure)
        probability = math.sin(theta / 2) ** 2  # ~0.708
        assert abs(ones / shots - probability) < 0.25

    def test_rotated_lattice_rejected(self):
        _core, layer = make_layer(seed=2)
        circuit = Circuit()
        circuit.add("prep_z", 0)
        circuit.add("h", 0)
        layer.run(circuit)
        with pytest.raises(ValueError):
            inject_logical_state(layer, 0, 1.0)

    def test_injection_circuit_structure(self):
        qubit_layer = make_layer(seed=1)[1]
        circuit = injection_circuit(
            qubit_layer.logical_qubits[0], 1.0, 2.0
        )
        names = [o.name for o in circuit.operations()]
        assert names.count("prep_z") == 9
        assert names.count("h") == 4
        assert "ry" in names and "rz" in names


class TestBlochDiagnostics:
    def test_rotation_aware(self):
        """|+>_L via H_L reads Bloch (1, 0, 0) in the rotated frame."""
        _core, layer = make_layer(seed=9)
        circuit = Circuit()
        circuit.add("prep_z", 0)
        circuit.add("h", 0)
        layer.run(circuit)
        observed = logical_bloch_vector(layer, 0)
        assert np.allclose(observed, (1.0, 0.0, 0.0), atol=1e-8)

    def test_zero_state(self):
        _core, layer = make_layer(seed=9)
        circuit = Circuit()
        circuit.add("prep_z", 0)
        layer.run(circuit)
        assert np.allclose(
            logical_bloch_vector(layer, 0), (0.0, 0.0, 1.0), atol=1e-8
        )

    def test_requires_statevector(self):
        core = StabilizerCore(seed=0)
        layer = NinjaStarLayer(core)
        layer.createqubit(1)
        with pytest.raises(TypeError):
            logical_bloch_vector(layer, 0)


class TestTeleportedTGate:
    def test_t_on_plus_gives_magic_state(self):
        _core, layer = make_layer(seed=8, logical_qubits=2)
        circuit = Circuit()
        circuit.add("prep_z", 0)
        circuit.add("h", 0)
        layer.run(circuit)
        attempts = teleport_t_gate(layer, data_index=0, magic_index=1)
        assert attempts >= 1
        observed = logical_bloch_vector(layer, 0)
        expected = (math.cos(math.pi / 4), math.sin(math.pi / 4), 0.0)
        assert np.allclose(observed, expected, atol=1e-6)

    def test_t_on_zero_is_trivial(self):
        """T|0> = |0>: the teleported gate must preserve it."""
        _core, layer = make_layer(seed=4, logical_qubits=2)
        circuit = Circuit()
        circuit.add("prep_z", 0)
        layer.run(circuit)
        teleport_t_gate(layer, data_index=0, magic_index=1)
        observed = logical_bloch_vector(layer, 0)
        assert np.allclose(observed, (0.0, 0.0, 1.0), atol=1e-6)
