"""Tests for the array-native batched decoding layer.

Three pillars:

* the dense gather table is bit-identical to the dict LUT (same
  minimum-weight entries, same tie-break order) and lives behind a
  process-level cache;
* the vectorized syndrome packing round-trips and agrees with the
  scalar functions;
* :class:`BatchedWindowedLutDecoder` (and the MWPM-table variant)
  produce decisions bit-identical to running one scalar windowed
  decoder per shot on the same syndrome streams — including
  all-trivial batches, all-shots-correcting batches and ``shots=1``.
"""

import numpy as np
import pytest

from repro import telemetry
from repro.codes.rotated import RotatedSurfaceCode
from repro.codes.steane import HAMMING_CHECK_MATRIX
from repro.codes.surface17 import X_CHECK_MATRIX, Z_CHECK_MATRIX
from repro.decoders import (
    BatchedWindowedLutDecoder,
    BatchedWindowedMatchingDecoder,
    SyndromeRound,
    WindowedLutDecoder,
    WindowedMatchingDecoder,
    build_dense_lut,
    build_lut,
    clear_lut_cache,
    dense_lut,
    lut_cache_size,
    mwpm_dense_lut,
    pack_syndrome,
    pack_syndromes,
    syndrome_of,
    unpack_syndrome,
    unpack_syndromes,
)
from repro.decoders.batched import MAX_DENSE_CHECKS


@pytest.fixture(autouse=True)
def _fresh_cache():
    """Each test sees (and leaves behind) an empty process cache."""
    clear_lut_cache()
    yield
    clear_lut_cache()


# ----------------------------------------------------------------------
# Vectorized packing
# ----------------------------------------------------------------------
class TestVectorizedPacking:
    def test_round_trip_2d(self):
        rng = np.random.default_rng(7)
        bits = rng.integers(0, 2, size=(50, 6)).astype(bool)
        packed = pack_syndromes(bits)
        assert packed.shape == (50,)
        assert np.array_equal(unpack_syndromes(packed, 6), bits)

    def test_round_trip_3d(self):
        rng = np.random.default_rng(8)
        bits = rng.integers(0, 2, size=(4, 3, 5)).astype(bool)
        assert np.array_equal(
            unpack_syndromes(pack_syndromes(bits), 5), bits
        )

    def test_agrees_with_scalar_functions(self):
        rng = np.random.default_rng(9)
        bits = rng.integers(0, 2, size=(20, 4)).astype(bool)
        packed = pack_syndromes(bits)
        for row, value in zip(bits, packed):
            assert pack_syndrome(row) == int(value)
            assert np.array_equal(
                unpack_syndrome(int(value), 4), row
            )

    def test_little_endian_bit_order(self):
        assert int(pack_syndromes(np.array([True, False, False]))) == 1
        assert int(pack_syndromes(np.array([False, False, True]))) == 4


# ----------------------------------------------------------------------
# Dense table construction + cache
# ----------------------------------------------------------------------
def _legacy_build_lut(check_matrix):
    """The pre-vectorization dict builder, kept as the test oracle."""
    import itertools

    check = np.asarray(check_matrix, dtype=np.uint8)
    num_checks, num_qubits = check.shape
    lut = {0: np.zeros(num_qubits, dtype=bool)}
    target = 2**num_checks
    for weight in range(1, num_qubits + 1):
        if len(lut) == target:
            break
        for support in itertools.combinations(
            range(num_qubits), weight
        ):
            error = np.zeros(num_qubits, dtype=np.uint8)
            error[list(support)] = 1
            packed = pack_syndrome(syndrome_of(check, error))
            if packed not in lut:
                lut[packed] = error.astype(bool)
    return lut


class TestDenseLut:
    @pytest.mark.parametrize(
        "matrix", [X_CHECK_MATRIX, Z_CHECK_MATRIX, HAMMING_CHECK_MATRIX]
    )
    def test_matches_legacy_builder(self, matrix):
        table, reachable = build_dense_lut(matrix)
        legacy = _legacy_build_lut(matrix)
        assert set(np.flatnonzero(reachable)) == set(legacy)
        for packed, error in legacy.items():
            assert np.array_equal(table[packed], error)

    def test_matches_legacy_on_random_matrices(self):
        """Same entries AND same tie-breaks on rank-deficient cases."""
        rng = np.random.default_rng(2017)
        for _ in range(25):
            shape = (int(rng.integers(1, 5)), int(rng.integers(1, 9)))
            matrix = rng.integers(0, 2, size=shape).astype(np.uint8)
            table, reachable = build_dense_lut(matrix)
            legacy = _legacy_build_lut(matrix)
            assert set(np.flatnonzero(reachable)) == set(legacy)
            for packed, error in legacy.items():
                assert np.array_equal(table[packed], error)

    def test_build_lut_dict_unchanged_api(self):
        lut = build_lut(Z_CHECK_MATRIX)
        assert len(lut) == 16
        assert not lut[0].any()
        # Entries are fresh, mutation-safe copies.
        lut[0][0] = True
        assert not build_lut(Z_CHECK_MATRIX)[0].any()

    def test_refuses_infeasible_check_counts(self):
        big = np.ones((MAX_DENSE_CHECKS + 1, 4), dtype=np.uint8)
        with pytest.raises(ValueError):
            build_dense_lut(big)


class TestLutCache:
    def test_same_matrix_shares_one_table(self):
        table_a, _ = dense_lut(X_CHECK_MATRIX)
        table_b, _ = dense_lut(np.array(X_CHECK_MATRIX))
        assert table_a is table_b
        assert lut_cache_size() == 1

    def test_cached_tables_are_frozen(self):
        table, reachable = dense_lut(X_CHECK_MATRIX)
        with pytest.raises(ValueError):
            table[0, 0] = True
        with pytest.raises(ValueError):
            reachable[0] = False

    def test_clear_forces_rebuild(self):
        table_a, _ = dense_lut(X_CHECK_MATRIX)
        assert clear_lut_cache() == 1
        assert lut_cache_size() == 0
        table_b, _ = dense_lut(X_CHECK_MATRIX)
        assert table_a is not table_b
        assert np.array_equal(table_a, table_b)

    def test_distinct_matrices_distinct_entries(self):
        dense_lut(X_CHECK_MATRIX)
        dense_lut(Z_CHECK_MATRIX)
        dense_lut(HAMMING_CHECK_MATRIX)
        assert lut_cache_size() == 3

    def test_scalar_decoders_share_the_cache(self):
        """The per-shot constructors stop rebuilding identical LUTs."""
        WindowedLutDecoder(X_CHECK_MATRIX, Z_CHECK_MATRIX)
        assert lut_cache_size() == 2
        with telemetry.enabled() as collector:
            WindowedLutDecoder(X_CHECK_MATRIX, Z_CHECK_MATRIX)
        counters = collector.counters[
            ("decoder.batched", "lut_cache")
        ]
        assert counters["hits"] == 2
        assert "misses" not in counters

    def test_cache_telemetry_counters(self):
        with telemetry.enabled() as collector:
            dense_lut(X_CHECK_MATRIX)
            dense_lut(X_CHECK_MATRIX)
            dense_lut(X_CHECK_MATRIX)
        counters = collector.counters[
            ("decoder.batched", "lut_cache")
        ]
        assert counters == {"misses": 1, "hits": 2}

    def test_mwpm_table_cached_separately_from_lut(self):
        code = RotatedSurfaceCode(3)
        from repro.decoders import boundary_qubits_for

        dense_lut(code.x_check_matrix)
        table_a, _ = mwpm_dense_lut(
            code.x_check_matrix, boundary_qubits_for(code, "x")
        )
        table_b, _ = mwpm_dense_lut(
            code.x_check_matrix, boundary_qubits_for(code, "x")
        )
        assert table_a is table_b
        assert lut_cache_size() == 2


class TestMwpmDenseTable:
    def test_rows_reproduce_mwpm_decisions(self):
        from repro.decoders import MwpmDecoder, boundary_qubits_for

        code = RotatedSurfaceCode(3)
        boundary = boundary_qubits_for(code, "z")
        table, reachable = mwpm_dense_lut(code.z_check_matrix, boundary)
        assert reachable.all()
        decoder = MwpmDecoder(code.z_check_matrix, boundary)
        num_checks = code.z_check_matrix.shape[0]
        for packed in range(1 << num_checks):
            syndrome = unpack_syndrome(packed, num_checks)
            assert np.array_equal(
                table[packed], decoder.decode(syndrome).astype(bool)
            )


# ----------------------------------------------------------------------
# Batched windowed decoding equivalence
# ----------------------------------------------------------------------
def _random_stream(rng, shots, rounds, num_checks, p):
    return rng.random((shots, rounds, num_checks)) < p


def _scalar_decisions(decoders, x_rounds, z_rounds, initialize):
    """Drive one scalar decoder per shot over one window's arrays."""
    out = []
    for shot, decoder in enumerate(decoders):
        rounds = [
            SyndromeRound(
                x_syndrome=x_rounds[shot, index],
                z_syndrome=z_rounds[shot, index],
            )
            for index in range(x_rounds.shape[1])
        ]
        if initialize:
            decoder.reset()
            out.append(decoder.initialize(rounds))
        else:
            out.append(decoder.decode_window(rounds))
    return out


def _assert_window_equivalent(batched_decision, scalar_decisions):
    assert np.array_equal(
        batched_decision.x_corrections,
        np.stack([d.x_corrections for d in scalar_decisions]),
    )
    assert np.array_equal(
        batched_decision.z_corrections,
        np.stack([d.z_corrections for d in scalar_decisions]),
    )
    assert np.array_equal(
        batched_decision.has_corrections,
        np.array([d.has_corrections for d in scalar_decisions]),
    )


def _run_equivalence(
    make_batched,
    make_scalar,
    num_checks_x,
    num_checks_z,
    shots,
    seed,
    windows=6,
    rounds_per_window=2,
    init_rounds=3,
    p=0.25,
):
    rng = np.random.default_rng(seed)
    batched = make_batched()
    scalars = [make_scalar() for _ in range(shots)]
    init_x = _random_stream(rng, shots, init_rounds, num_checks_x, p)
    init_z = _random_stream(rng, shots, init_rounds, num_checks_z, p)
    batched.reset()
    decision = batched.initialize(init_x, init_z)
    _assert_window_equivalent(
        decision,
        _scalar_decisions(scalars, init_x, init_z, initialize=True),
    )
    for _ in range(windows):
        x_rounds = _random_stream(
            rng, shots, rounds_per_window, num_checks_x, p
        )
        z_rounds = _random_stream(
            rng, shots, rounds_per_window, num_checks_z, p
        )
        decision = batched.decode_window(x_rounds, z_rounds)
        _assert_window_equivalent(
            decision,
            _scalar_decisions(
                scalars, x_rounds, z_rounds, initialize=False
            ),
        )


class TestBatchedWindowedLutDecoder:
    @pytest.mark.parametrize("shots", [1, 5, 32])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_equivalent_to_per_shot_decoder(self, shots, seed):
        _run_equivalence(
            lambda: BatchedWindowedLutDecoder(
                X_CHECK_MATRIX, Z_CHECK_MATRIX
            ),
            lambda: WindowedLutDecoder(X_CHECK_MATRIX, Z_CHECK_MATRIX),
            num_checks_x=4,
            num_checks_z=4,
            shots=shots,
            seed=seed,
        )

    def test_equivalent_without_majority_vote(self):
        _run_equivalence(
            lambda: BatchedWindowedLutDecoder(
                X_CHECK_MATRIX, Z_CHECK_MATRIX, use_majority_vote=False
            ),
            lambda: WindowedLutDecoder(
                X_CHECK_MATRIX, Z_CHECK_MATRIX, use_majority_vote=False
            ),
            num_checks_x=4,
            num_checks_z=4,
            shots=8,
            seed=3,
        )

    def test_equivalent_on_odd_window_sizes(self):
        """Three fresh rounds: the even-history drop-oldest rule."""
        _run_equivalence(
            lambda: BatchedWindowedLutDecoder(
                X_CHECK_MATRIX, Z_CHECK_MATRIX
            ),
            lambda: WindowedLutDecoder(X_CHECK_MATRIX, Z_CHECK_MATRIX),
            num_checks_x=4,
            num_checks_z=4,
            shots=7,
            seed=4,
            rounds_per_window=3,
        )

    def test_all_trivial_batch(self):
        decoder = BatchedWindowedLutDecoder(
            X_CHECK_MATRIX, Z_CHECK_MATRIX
        )
        zeros = np.zeros((5, 3, 4), dtype=bool)
        decision = decoder.initialize(zeros, zeros)
        assert not decision.has_corrections.any()
        window = np.zeros((5, 2, 4), dtype=bool)
        decision = decoder.decode_window(window, window)
        assert not decision.x_corrections.any()
        assert not decision.z_corrections.any()
        assert not decision.has_corrections.any()

    def test_all_shots_correcting_batch(self):
        """A persistent X error on D4 in every shot fires everywhere."""
        decoder = BatchedWindowedLutDecoder(
            X_CHECK_MATRIX, Z_CHECK_MATRIX
        )
        shots = 6
        zeros = np.zeros((shots, 3, 4), dtype=bool)
        decoder.initialize(zeros, zeros)
        z_syndrome = syndrome_of(
            Z_CHECK_MATRIX, np.eye(9, dtype=np.uint8)[4]
        ).astype(bool)
        x_rounds = np.zeros((shots, 2, 4), dtype=bool)
        z_rounds = np.broadcast_to(
            z_syndrome, (shots, 2, 4)
        ).copy()
        decision = decoder.decode_window(x_rounds, z_rounds)
        assert decision.has_corrections.all()
        expected = np.zeros(9, dtype=bool)
        expected[4] = True
        assert np.array_equal(
            decision.x_corrections, np.tile(expected, (shots, 1))
        )
        assert not decision.z_corrections.any()

    def test_decode_before_initialize_rejected(self):
        decoder = BatchedWindowedLutDecoder(
            X_CHECK_MATRIX, Z_CHECK_MATRIX
        )
        window = np.zeros((2, 2, 4), dtype=bool)
        with pytest.raises(RuntimeError):
            decoder.decode_window(window, window)

    def test_even_init_rounds_rejected(self):
        decoder = BatchedWindowedLutDecoder(
            X_CHECK_MATRIX, Z_CHECK_MATRIX
        )
        rounds = np.zeros((2, 2, 4), dtype=bool)
        with pytest.raises(ValueError):
            decoder.initialize(rounds, rounds)

    def test_reset_clears_history(self):
        decoder = BatchedWindowedLutDecoder(
            X_CHECK_MATRIX, Z_CHECK_MATRIX
        )
        rounds = np.zeros((2, 3, 4), dtype=bool)
        decoder.initialize(rounds, rounds)
        decoder.reset()
        window = np.zeros((2, 2, 4), dtype=bool)
        with pytest.raises(RuntimeError):
            decoder.decode_window(window, window)

    def test_decode_window_emits_batched_telemetry(self):
        decoder = BatchedWindowedLutDecoder(
            X_CHECK_MATRIX, Z_CHECK_MATRIX
        )
        rounds = np.zeros((3, 3, 4), dtype=bool)
        decoder.initialize(rounds, rounds)
        window = np.zeros((3, 2, 4), dtype=bool)
        with telemetry.enabled() as collector:
            decoder.decode_window(window, window)
        key = ("decoder.batched", "BatchedWindowedLutDecoder")
        assert collector.counters[key]["batch_decisions"] == 1
        assert collector.counters[key]["shots"] == 3
        assert (
            "decoder.batched",
            "BatchedWindowedLutDecoder.decode_window",
        ) in collector.span_totals


class TestBatchedWindowedMatchingDecoder:
    @pytest.mark.parametrize("shots", [1, 9])
    def test_equivalent_to_per_shot_matching(self, shots):
        code = RotatedSurfaceCode(3)
        num_x = code.x_check_matrix.shape[0]
        num_z = code.z_check_matrix.shape[0]
        _run_equivalence(
            lambda: BatchedWindowedMatchingDecoder(code),
            lambda: WindowedMatchingDecoder(code),
            num_checks_x=num_x,
            num_checks_z=num_z,
            shots=shots,
            seed=11,
            windows=4,
        )


# ----------------------------------------------------------------------
# Packed-word syndrome path (regression: per-call allocation fix)
# ----------------------------------------------------------------------
def _pack_rounds(rounds):
    """(shots, rounds, checks) bools -> (rounds, checks, words) uint64."""
    from repro.sim.packedsim import pack_bits

    return np.stack(
        [pack_bits(rounds[:, index, :].T) for index in range(rounds.shape[1])]
    )


class TestPackedSyndromeWords:
    @pytest.mark.parametrize("shots", [1, 63, 64, 65, 200])
    def test_words_path_matches_scalar_pack(self, shots):
        from repro.decoders import pack_syndromes_words
        from repro.sim.packedsim import pack_bits

        rng = np.random.default_rng(31)
        bits = rng.integers(0, 2, size=(shots, 8)).astype(bool)
        planes = pack_bits(bits.T)
        assert np.array_equal(
            pack_syndromes_words(planes, shots), pack_syndromes(bits)
        )

    @pytest.mark.parametrize("shots", [1, 64, 65])
    def test_empty_syndromes(self, shots):
        from repro.decoders import pack_syndromes_words
        from repro.sim.packedsim import num_words

        planes = np.zeros((8, num_words(shots)), dtype=np.uint64)
        packed = pack_syndromes_words(planes, shots)
        assert packed.shape == (shots,)
        assert not packed.any()
        assert np.array_equal(
            packed, pack_syndromes(np.zeros((shots, 8), dtype=bool))
        )

    @pytest.mark.parametrize("shots", [1, 64, 65])
    def test_all_ones_syndromes(self, shots):
        from repro.decoders import pack_syndromes_words
        from repro.sim.packedsim import pack_bits

        bits = np.ones((shots, 8), dtype=bool)
        packed = pack_syndromes_words(pack_bits(bits.T), shots)
        assert (packed == 255).all()
        assert np.array_equal(packed, pack_syndromes(bits))

    def test_pack_weights_cached_per_check_count(self):
        from repro.decoders.batched import _pack_weights

        assert _pack_weights(8) is _pack_weights(8)
        weights = _pack_weights(8)
        assert not weights.flags.writeable


class TestPackedWindowedLutDecoder:
    """Packed decoder == unpacked batched decoder, bit for bit."""

    @pytest.mark.parametrize("shots", [1, 64, 65])
    @pytest.mark.parametrize("vote", [True, False])
    def test_equivalent_to_unpacked_batched(self, shots, vote):
        from repro.decoders import PackedWindowedLutDecoder

        rng = np.random.default_rng(17)
        reference = BatchedWindowedLutDecoder(
            X_CHECK_MATRIX, Z_CHECK_MATRIX, use_majority_vote=vote
        )
        packed = PackedWindowedLutDecoder(
            X_CHECK_MATRIX,
            Z_CHECK_MATRIX,
            num_shots=shots,
            use_majority_vote=vote,
        )
        init_x = _random_stream(rng, shots, 3, 4, 0.25)
        init_z = _random_stream(rng, shots, 3, 4, 0.25)
        decision_ref = reference.initialize(init_x, init_z)
        decision_packed = packed.initialize(
            _pack_rounds(init_x), _pack_rounds(init_z)
        )
        for attribute in (
            "x_corrections",
            "z_corrections",
            "has_corrections",
            "voted_x",
            "voted_z",
        ):
            assert np.array_equal(
                getattr(decision_ref, attribute),
                getattr(decision_packed, attribute),
            ), attribute
        for _ in range(6):
            x_rounds = _random_stream(rng, shots, 2, 4, 0.25)
            z_rounds = _random_stream(rng, shots, 2, 4, 0.25)
            decision_ref = reference.decode_window(x_rounds, z_rounds)
            decision_packed = packed.decode_window(
                _pack_rounds(x_rounds), _pack_rounds(z_rounds)
            )
            for attribute in (
                "x_corrections",
                "z_corrections",
                "has_corrections",
                "voted_x",
                "voted_z",
            ):
                assert np.array_equal(
                    getattr(decision_ref, attribute),
                    getattr(decision_packed, attribute),
                ), attribute

    def test_requires_positive_shots(self):
        from repro.decoders import PackedWindowedLutDecoder

        with pytest.raises(ValueError):
            PackedWindowedLutDecoder(
                X_CHECK_MATRIX, Z_CHECK_MATRIX, num_shots=0
            )

    def test_rejects_even_initialization(self):
        from repro.decoders import PackedWindowedLutDecoder

        decoder = PackedWindowedLutDecoder(
            X_CHECK_MATRIX, Z_CHECK_MATRIX, num_shots=4
        )
        rounds = _pack_rounds(np.zeros((4, 2, 4), dtype=bool))
        with pytest.raises(ValueError, match="odd number"):
            decoder.initialize(rounds, rounds)

    def test_decode_before_initialize_raises(self):
        from repro.decoders import PackedWindowedLutDecoder

        decoder = PackedWindowedLutDecoder(
            X_CHECK_MATRIX, Z_CHECK_MATRIX, num_shots=4
        )
        rounds = _pack_rounds(np.zeros((4, 2, 4), dtype=bool))
        with pytest.raises(RuntimeError, match="not initialized"):
            decoder.decode_window(rounds, rounds)

    def test_reset_clears_word_state(self):
        from repro.decoders import PackedWindowedLutDecoder

        decoder = PackedWindowedLutDecoder(
            X_CHECK_MATRIX, Z_CHECK_MATRIX, num_shots=4
        )
        init = _pack_rounds(np.zeros((4, 3, 4), dtype=bool))
        decoder.initialize(init, init)
        decoder.reset()
        rounds = _pack_rounds(np.zeros((4, 2, 4), dtype=bool))
        with pytest.raises(RuntimeError, match="not initialized"):
            decoder.decode_window(rounds, rounds)
