"""Tests for QASM serialisation, random circuits, census, workloads."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import (
    CLIFFORD_GATE_SET,
    DEFAULT_GATE_SET,
    Circuit,
    census,
    format_census,
    qasm,
    random_circuit,
    random_clifford_circuit,
    random_pauli_layer,
    workloads,
)
from repro.gates import GateClass


class TestQasm:
    def test_round_trip_simple(self):
        circuit = Circuit("demo")
        circuit.add("h", 0)
        circuit.add("cnot", 0, 1)
        circuit.add("rz", 1, params=(0.75,))
        circuit.add("measure", 1)
        text = qasm.dumps(circuit)
        parsed = qasm.loads(text)
        ops = list(parsed.operations())
        assert [o.name for o in ops] == ["h", "cnot", "rz", "measure"]
        assert ops[2].params == (0.75,)

    def test_parallel_blocks(self):
        circuit = Circuit()
        slot = circuit.new_slot()
        from repro.circuits import op

        slot.add(op("h", 0))
        slot.add(op("h", 1))
        text = qasm.dumps(circuit, parallel_blocks=True)
        assert "{" in text and "|" in text
        parsed = qasm.loads(text)
        assert len(parsed.slots[0]) == 2

    def test_comments_and_blanks_ignored(self):
        parsed = qasm.loads("# hello\n\nx q0\n")
        assert parsed.num_operations() == 1

    def test_error_annotation_round_trip(self):
        from repro.circuits import op

        circuit = Circuit()
        circuit.append(op("x", 0, is_error=True))
        text = qasm.dumps(circuit)
        parsed = qasm.loads(text)
        assert next(parsed.operations()).is_error

    def test_invalid_line_rejected(self):
        with pytest.raises(ValueError):
            qasm.loads("h q0 q1 nonsense (")

    @given(st.integers(2, 5), st.integers(1, 40), st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_round_trip_random(self, qubits, gates, seed):
        circuit = random_circuit(
            qubits, gates, rng=np.random.default_rng(seed)
        )
        parsed = qasm.loads(qasm.dumps(circuit))
        original = [
            (o.name, o.qubits, o.params) for o in circuit.operations()
        ]
        reparsed = [
            (o.name, o.qubits, o.params) for o in parsed.operations()
        ]
        assert original == reparsed


class TestRandomCircuits:
    def test_gate_count(self, rng):
        circuit = random_circuit(5, 37, rng=rng)
        assert circuit.num_operations() == 37

    def test_gate_set_respected(self, rng):
        circuit = random_circuit(4, 100, rng=rng)
        names = {o.name for o in circuit.operations()}
        allowed = {"cnot" if g == "cx" else g for g in DEFAULT_GATE_SET}
        assert names <= allowed

    def test_clifford_variant_has_no_t(self, rng):
        circuit = random_clifford_circuit(4, 100, rng=rng)
        names = {o.name for o in circuit.operations()}
        assert "t" not in names and "tdg" not in names
        assert names <= set(CLIFFORD_GATE_SET)

    def test_reproducibility(self):
        a = random_circuit(4, 20, rng=np.random.default_rng(3))
        b = random_circuit(4, 20, rng=np.random.default_rng(3))
        assert [o.name for o in a.operations()] == [
            o.name for o in b.operations()
        ]

    def test_single_qubit_requires_no_two_qubit_gates(self):
        with pytest.raises(ValueError):
            random_circuit(1, 5)
        circuit = random_circuit(
            1, 5, gate_set=("x", "h"), rng=np.random.default_rng(0)
        )
        assert circuit.num_operations() == 5

    def test_pauli_layer_is_one_slot(self, rng):
        circuit = random_pauli_layer(6, rng=rng)
        assert circuit.num_slots() == 1
        assert len(circuit.slots[0]) == 6
        assert all(o.is_pauli for o in circuit.operations())


class TestCensus:
    def test_pauli_fraction(self):
        circuit = Circuit()
        circuit.add("h", 0)
        circuit.add("x", 0)
        circuit.add("x", 0)
        circuit.add("t", 0)
        result = census(circuit)
        assert result.total_operations == 4
        assert result.pauli_gate_count == 2
        assert result.pauli_fraction == pytest.approx(0.5)
        assert result.non_clifford_count == 1

    def test_pauli_only_slots(self):
        circuit = Circuit()
        circuit.add("x", 0)
        circuit.add("y", 1)  # same slot, all Pauli
        circuit.barrier()
        circuit.add("h", 0)
        result = census(circuit)
        assert result.pauli_only_slots == 1
        assert result.total_slots == 2

    def test_errors_excluded(self):
        from repro.circuits import op

        circuit = Circuit()
        circuit.append(op("h", 0))
        circuit.append(op("x", 0, is_error=True))
        result = census(circuit)
        assert result.total_operations == 1

    def test_format_census_mentions_percentages(self):
        circuit = Circuit()
        circuit.add("x", 0)
        text = format_census(census(circuit))
        assert "pauli gates: 1 (100.00%)" in text

    def test_empty_circuit(self):
        result = census(Circuit())
        assert result.pauli_fraction == 0.0
        assert result.pauli_slot_fraction == 0.0


class TestWorkloads:
    def test_all_workloads_build(self):
        for name, circuit in workloads.all_workloads().items():
            assert circuit.num_operations() > 0, name

    def test_clifford_t_pauli_fraction_near_target(self):
        circuit = workloads.clifford_t_workload(
            num_qubits=6, num_gates=3000, pauli_fraction=0.06
        )
        result = census(circuit)
        # The paper reports up to 7% Pauli gates in compiled programs.
        assert 0.02 < result.pauli_fraction < 0.12

    def test_teleportation_has_byproduct_paulis(self):
        result = census(workloads.teleportation_workload(4))
        assert result.pauli_gate_count >= 8  # 2 byproducts per round

    def test_adder_contains_toffolis(self):
        result = census(workloads.cnot_adder_workload(3))
        assert result.per_gate.get("toffoli", 0) > 0
