"""Tests for the ESM circuit generator (Table 5.8, Figs 2.2/2.3)."""

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.codes.surface17 import (
    active_plaquettes,
    parallel_esm,
    serialized_esm,
)
from repro.qpdo import StabilizerCore

QUBIT_MAP = list(range(17))


class TestParallelEsmStructure:
    def test_table_5_8_gate_and_slot_counts(self):
        esm = parallel_esm(QUBIT_MAP)
        assert esm.circuit.num_slots() == 8
        assert esm.circuit.num_operations() == 48

    def test_table_5_8_per_slot_contents(self):
        esm = parallel_esm(QUBIT_MAP)
        slots = esm.circuit.slots
        # Slot 1: reset X ancillas.
        assert [o.name for o in slots[0]] == ["prep_z"] * 4
        # Slot 2: reset Z ancillas + H on X ancillas.
        names = sorted(o.name for o in slots[1])
        assert names == ["h"] * 4 + ["prep_z"] * 4
        # Slots 3-6: six CNOTs each.
        for slot in slots[2:6]:
            assert [o.name for o in slot] == ["cnot"] * 6
        # Slot 7: H on X ancillas.
        assert [o.name for o in slots[6]] == ["h"] * 4
        # Slot 8: measure all ancillas.
        assert [o.name for o in slots[7]] == ["measure"] * 8

    def test_syndrome_bookkeeping(self):
        esm = parallel_esm(QUBIT_MAP)
        assert len(esm.x_measurements) == 4
        assert len(esm.z_measurements) == 4
        measured = {
            o.qubits[0]
            for o in esm.x_measurements + esm.z_measurements
        }
        assert measured == set(range(9, 17))

    @pytest.mark.parametrize("rotated", [False, True])
    def test_no_qubit_conflicts_in_any_slot(self, rotated):
        """The interleaved CNOT schedule must never double-book."""
        esm = parallel_esm(QUBIT_MAP, rotated=rotated)
        for slot in esm.circuit:
            qubits = [q for o in slot for q in o.qubits]
            assert len(qubits) == len(set(qubits))

    def test_cnot_directions(self):
        """X checks drive ancilla->data, Z checks data->ancilla."""
        esm = parallel_esm(QUBIT_MAP)
        for slot in esm.circuit.slots[2:6]:
            for operation in slot:
                control, target = operation.qubits
                if control >= 9:  # ancilla controls => X check
                    assert target < 9
                else:  # data controls => Z check
                    assert target >= 9

    def test_rotation_swaps_check_types(self):
        normal = parallel_esm(QUBIT_MAP, rotated=False)
        rotated = parallel_esm(QUBIT_MAP, rotated=True)
        normal_x_ancillas = {
            o.qubits[0] for o in normal.x_measurements
        }
        rotated_x_ancillas = {
            o.qubits[0] for o in rotated.x_measurements
        }
        assert normal_x_ancillas.isdisjoint(rotated_x_ancillas)
        assert normal_x_ancillas | rotated_x_ancillas == set(range(9, 17))

    def test_z_only_dance_mode(self):
        esm = parallel_esm(QUBIT_MAP, dance_mode="z_only")
        assert len(esm.x_measurements) == 0
        assert len(esm.z_measurements) == 4
        names = {o.name for o in esm.circuit.operations()}
        assert "h" not in names  # Z checks need no Hadamards

    def test_active_plaquettes_filtering(self):
        assert len(active_plaquettes(False, "all")) == 8
        assert len(active_plaquettes(False, "z_only")) == 4
        assert all(
            basis == "z"
            for _p, basis in active_plaquettes(True, "z_only")
        )

    def test_qubit_map_translation(self):
        mapping = list(range(100, 117))
        esm = parallel_esm(mapping)
        for operation in esm.circuit.operations():
            for qubit in operation.qubits:
                assert 100 <= qubit < 117

    def test_short_qubit_map_rejected(self):
        with pytest.raises(ValueError):
            parallel_esm(list(range(10)))


class TestEsmProjectsStabilizers:
    """Functionally, an ESM round measures exactly the stabilizers."""

    @pytest.mark.parametrize("rotated", [False, True])
    def test_second_round_is_deterministic(self, rotated):
        """Round 2 must repeat round 1's syndrome on a noiseless state."""
        core = StabilizerCore(seed=11)
        core.createqubit(17)
        first = parallel_esm(QUBIT_MAP, rotated=rotated)
        core.add(first.circuit)
        result1 = first.syndromes(core.execute())
        second = parallel_esm(QUBIT_MAP, rotated=rotated)
        core.add(second.circuit)
        result2 = second.syndromes(core.execute())
        assert result1 == result2

    def test_data_reset_gives_trivial_z_syndrome(self):
        core = StabilizerCore(seed=3)
        core.createqubit(17)
        esm = parallel_esm(QUBIT_MAP)
        core.add(esm.circuit)
        _x_bits, z_bits = esm.syndromes(core.execute())
        assert z_bits == [0, 0, 0, 0]  # |0...0> satisfies all Z checks


class TestSerializedEsm:
    def test_equivalent_syndromes_to_parallel(self):
        """Serialized and parallel ESM agree on a noiseless state."""
        core = StabilizerCore(seed=5)
        core.createqubit(17)
        parallel_round = parallel_esm(QUBIT_MAP)
        core.add(parallel_round.circuit)
        parallel_syndromes = parallel_round.syndromes(core.execute())

        serial_round = serialized_esm(QUBIT_MAP[:9], shared_ancilla=9)
        core.add(serial_round.circuit)
        serial_syndromes = serial_round.syndromes(core.execute())
        assert parallel_syndromes == serial_syndromes

    def test_single_ancilla_reuse(self):
        esm = serialized_esm(list(range(9)), shared_ancilla=9)
        ancilla_ops = [
            o
            for o in esm.circuit.operations()
            if 9 in o.qubits
        ]
        assert all(
            9 in o.qubits for o in esm.x_measurements + esm.z_measurements
        )
        assert len(esm.x_measurements) == 4
        assert len(esm.z_measurements) == 4
        resets = [o for o in ancilla_ops if o.is_preparation]
        assert len(resets) == 8  # one per stabilizer

    def test_short_data_map_rejected(self):
        with pytest.raises(ValueError):
            serialized_esm(list(range(5)), shared_ancilla=9)
