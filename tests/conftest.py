"""Shared fixtures for the test suite."""

import numpy as np
import pytest


def pytest_addoption(parser):
    """``--fuzz-iters N``: extra differential-fuzz seeds per test.

    The default run uses only the fixed corpus of
    ``tests/test_fuzz_differential.py``; deeper local runs append
    ``N`` additional deterministic seeds.
    """
    parser.addoption(
        "--fuzz-iters",
        type=int,
        default=0,
        help="extra deterministic differential-fuzz iterations",
    )


@pytest.fixture
def rng():
    """A deterministic random generator for reproducible tests."""
    return np.random.default_rng(20160623)  # the thesis' date


@pytest.fixture
def stabilizer_core():
    """A fresh seeded stabilizer core."""
    from repro.qpdo import StabilizerCore

    return StabilizerCore(seed=17)


@pytest.fixture
def statevector_core():
    """A fresh seeded state-vector core."""
    from repro.qpdo import StateVectorCore

    return StateVectorCore(seed=17)
