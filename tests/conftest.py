"""Shared fixtures for the test suite."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    """A deterministic random generator for reproducible tests."""
    return np.random.default_rng(20160623)  # the thesis' date


@pytest.fixture
def stabilizer_core():
    """A fresh seeded stabilizer core."""
    from repro.qpdo import StabilizerCore

    return StabilizerCore(seed=17)


@pytest.fixture
def statevector_core():
    """A fresh seeded state-vector core."""
    from repro.qpdo import StateVectorCore

    return StateVectorCore(seed=17)
