"""Fault injection against the serve layer.

Four failure families, each asserting the recovery contract rather
than mere survival:

* **worker killed mid-shard** — the fleet respawns the pool, resumes
  from the job checkpoint, and the final report is bit-identical to
  an undisturbed run's;
* **torn checkpoint / journal tails** — a kill mid-write leaves a
  partial final line; reload drops exactly that line and the resumed
  run still reproduces the clean result;
* **malformed job documents** — rejected at the door with a
  ``serve_error``, never entering the queue or the journal;
* **SIGTERM mid-job + restart** — a real server subprocess is killed
  while a job runs; the restarted server resumes it and serves a
  ``job_result`` byte-identical to an uninterrupted server's.
"""

import asyncio
import http.client
import json
import os
import signal
import socket
import subprocess
import sys
import time

import pytest

from repro.serve import ServeApp, ServeConfig, WorkerFleet
from repro.serve.app import _http_request

SRC = os.path.join(os.path.dirname(__file__), "..", "src")

SWEEP_PARAMS = dict(
    per_values=[0.004, 0.008],
    error_kind="x",
    shots=12,
    windows=3,
    seed=29,
    shard_shots=3,
    engine="framesim",
)


def sweep_fingerprint(report):
    """The deterministic content of a ParallelSweepReport."""
    payload = report.sweep.to_json_dict()
    payload["committed"] = report.committed_shards
    return json.dumps(payload, sort_keys=True)


class TestWorkerDeath:
    def test_killed_worker_respawns_and_result_is_identical(
        self, tmp_path
    ):
        reference_fleet = WorkerFleet(workers=2)
        try:
            reference = reference_fleet.run_sweep_job(
                checkpoint=str(tmp_path / "ref.jsonl"), **SWEEP_PARAMS
            )
        finally:
            reference_fleet.shutdown()

        fleet = WorkerFleet(workers=2, max_respawns=3)
        try:
            fleet.warm()
            # Kill one live worker, then run: the pool notices the
            # death on first dispatch, breaks, and the fleet must
            # respawn and re-enter the sweep against its checkpoint.
            victim = next(iter(fleet._pool._processes))
            os.kill(victim, signal.SIGKILL)
            report = fleet.run_sweep_job(
                checkpoint=str(tmp_path / "fault.jsonl"),
                **SWEEP_PARAMS,
            )
            assert fleet.respawns >= 1
            assert sweep_fingerprint(report) == sweep_fingerprint(
                reference
            )
        finally:
            fleet.shutdown()

    def test_kill_mid_flight_still_converges(self, tmp_path):
        """SIGKILL landing while shards are executing."""
        import threading

        reference_fleet = WorkerFleet(workers=2)
        try:
            reference = reference_fleet.run_sweep_job(
                checkpoint=str(tmp_path / "ref.jsonl"), **SWEEP_PARAMS
            )
        finally:
            reference_fleet.shutdown()

        fleet = WorkerFleet(workers=2, max_respawns=3)
        outcome = {}

        def run():
            try:
                outcome["report"] = fleet.run_sweep_job(
                    checkpoint=str(tmp_path / "fault.jsonl"),
                    **SWEEP_PARAMS,
                )
            except Exception as error:  # pragma: no cover - fail path
                outcome["error"] = error

        try:
            fleet.warm()
            pids = list(fleet._pool._processes)
            worker = threading.Thread(target=run)
            worker.start()
            os.kill(pids[0], signal.SIGKILL)
            worker.join(timeout=120)
            assert not worker.is_alive()
            assert "error" not in outcome, outcome.get("error")
            assert sweep_fingerprint(
                outcome["report"]
            ) == sweep_fingerprint(reference)
        finally:
            fleet.shutdown()

    def test_respawn_budget_exhaustion_raises(self):
        from concurrent.futures.process import BrokenProcessPool

        fleet = WorkerFleet(workers=1, max_respawns=0)
        try:
            fleet.warm()
            os.kill(next(iter(fleet._pool._processes)), signal.SIGKILL)
            with pytest.raises(BrokenProcessPool):
                fleet.run_decode(
                    {
                        "x_rounds": [[[0, 0, 0, 0]] * 3],
                        "z_rounds": [[[0, 0, 0, 0]] * 3],
                    }
                )
        finally:
            fleet.shutdown()


class TestTornTails:
    def test_torn_checkpoint_tail_resumes_bit_identically(
        self, tmp_path
    ):
        fleet = WorkerFleet(workers=1)
        try:
            clean = fleet.run_sweep_job(
                checkpoint=str(tmp_path / "clean.jsonl"),
                **SWEEP_PARAMS,
            )
            # A second checkpoint interrupted mid-write: keep a prefix
            # of whole records plus a torn final line.
            source = (tmp_path / "clean.jsonl").read_text()
            lines = source.splitlines(keepends=True)
            torn = tmp_path / "torn.jsonl"
            torn.write_text(
                "".join(lines[: len(lines) // 2]) + lines[-1][:25]
            )
            resumed = fleet.run_sweep_job(
                checkpoint=str(torn), **SWEEP_PARAMS
            )
            assert sweep_fingerprint(resumed) == sweep_fingerprint(
                clean
            )
        finally:
            fleet.shutdown()

    def test_torn_journal_tail_recovers_remaining_jobs(self, tmp_path):
        async def scenario():
            spool = tmp_path / "spool"
            config = ServeConfig(
                port=0, workers=1, spool=str(spool)
            )
            app = ServeApp(config)
            server = await app.start()
            host, port = server.sockets[0].getsockname()[:2]
            await _http_request(
                host, port, "POST", "/v1/jobs",
                {
                    "job_id": "keeper",
                    "job_kind": "decode",
                    "params": {
                        "x_rounds": [[[0, 0, 0, 0]] * 3],
                        "z_rounds": [[[0, 0, 0, 0]] * 3],
                    },
                },
            )
            while True:
                _, doc = await _http_request(
                    host, port, "GET", "/v1/jobs/keeper", None
                )
                if doc["state"] == "done":
                    break
                await asyncio.sleep(0.02)
            app.request_stop()
            await app.run_until_stopped(server)

        asyncio.run(scenario())
        journal = tmp_path / "spool" / "jobs.jsonl"
        with open(journal, "a") as handle:
            handle.write('{"kind": "job_event", "event": "subm')

        async def restarted():
            app = ServeApp(
                ServeConfig(
                    port=0, workers=1,
                    spool=str(tmp_path / "spool"),
                )
            )
            job = app.queue.get("keeper")
            assert job is not None
            assert job.state == "done"
            app.fleet.shutdown()
            if app._journal is not None:
                app._journal.close()

        asyncio.run(restarted())


class TestMalformedDocuments:
    def test_rejections_never_touch_queue_or_journal(self, tmp_path):
        async def scenario():
            spool = tmp_path / "spool"
            app = ServeApp(
                ServeConfig(port=0, workers=1, spool=str(spool))
            )
            server = await app.start()
            host, port = server.sockets[0].getsockname()[:2]
            bad_bodies = [
                {"params": {}},  # no job_kind
                {"job_kind": "ler"},  # no params
                {"job_kind": "mystery", "params": {}},
                {"job_kind": "ler", "params": {}, "extra": 1},
                {"job_kind": "ler", "params": {}},  # missing rate
                {
                    "job_kind": "ler",
                    "params": {"physical_error_rate": 2.0},
                },
                {
                    "job_kind": "sweep",
                    "params": {"per_values": []},
                },
                {
                    "job_kind": "decode",
                    "params": {
                        "x_rounds": [[0]],  # not 3-d
                        "z_rounds": [[0]],
                    },
                },
                {
                    "job_kind": "decode",
                    "params": {
                        # ragged shapes
                        "x_rounds": [[[0, 0], [0]]],
                        "z_rounds": [[[0, 0, 0, 0]] * 3],
                    },
                },
                {
                    "job_kind": "ler",
                    "params": {
                        "physical_error_rate": 0.01,
                        "engine": "abacus",
                    },
                },
            ]
            for body in bad_bodies:
                status, doc = await _http_request(
                    host, port, "POST", "/v1/jobs", body
                )
                assert status == 400, body
                assert doc["kind"] == "serve_error"
            assert len(app.queue) == 0
            app.request_stop()
            await app.run_until_stopped(server)

        asyncio.run(scenario())
        # Nothing was journalled: rejected documents must not leave
        # any durable trace that a restart could resurrect.
        journal = tmp_path / "spool" / "jobs.jsonl"
        assert (
            not journal.exists()
            or journal.read_text().strip() == ""
        )


def _free_port():
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _request(port, method, path, body=None, timeout=30):
    connection = http.client.HTTPConnection(
        "127.0.0.1", port, timeout=timeout
    )
    try:
        payload = (
            json.dumps(body, sort_keys=True) if body is not None
            else None
        )
        connection.request(
            method, path, body=payload,
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def _wait_for_server(port, deadline=60):
    limit = time.time() + deadline
    while time.time() < limit:
        try:
            status, _ = _request(port, "GET", "/v1/health", timeout=5)
            if status == 200:
                return
        except OSError:
            time.sleep(0.1)
    raise TimeoutError(f"server on port {port} never became healthy")


def _spawn_server(port, spool):
    environment = dict(os.environ)
    environment["PYTHONPATH"] = SRC
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", str(port), "--workers", "2",
            "--spool", str(spool),
        ],
        env=environment,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


#: Long enough to survive a SIGTERM landing mid-run (~10s of shards).
BIG_JOB = {
    "job_id": "big",
    "job_kind": "sweep",
    "params": {
        "per_values": [0.004, 0.008],
        "shots": 96,
        "windows": 6,
        "shard_shots": 4,
        "seed": 37,
    },
}


def _run_job_to_completion(port, spool_dir):
    """Submit BIG_JOB on a fresh server and return its result doc."""
    server = _spawn_server(port, spool_dir)
    try:
        _wait_for_server(port)
        status, _ = _request(port, "POST", "/v1/jobs", BIG_JOB)
        assert status == 200
        deadline = time.time() + 300
        while time.time() < deadline:
            _, doc = _request(port, "GET", "/v1/jobs/big")
            if doc["state"] in ("done", "failed", "cancelled"):
                assert doc["state"] == "done", doc
                break
            time.sleep(0.2)
        _, result = _request(port, "GET", "/v1/jobs/big/result")
        return result
    finally:
        server.send_signal(signal.SIGTERM)
        try:
            server.wait(timeout=60)
        except subprocess.TimeoutExpired:  # pragma: no cover
            server.kill()
            server.wait()


@pytest.mark.slow
def test_sigterm_mid_job_then_restart_is_bit_identical(tmp_path):
    """The acceptance scenario: kill -TERM mid-job, restart, compare."""
    # Reference: the same job on an undisturbed server.
    reference = _run_job_to_completion(
        _free_port(), tmp_path / "reference-spool"
    )

    # Interrupted: SIGTERM while the job is RUNNING.
    port = _free_port()
    spool = tmp_path / "spool"
    first = _spawn_server(port, spool)
    try:
        _wait_for_server(port)
        status, _ = _request(port, "POST", "/v1/jobs", BIG_JOB)
        assert status == 200
        deadline = time.time() + 120
        checkpoint = spool / "checkpoints" / "big.jsonl"
        while time.time() < deadline:
            _, doc = _request(port, "GET", "/v1/jobs/big")
            if doc["state"] == "running" and checkpoint.exists():
                break  # mid-job: shards have started committing
            time.sleep(0.05)
        else:  # pragma: no cover - job finished too fast
            pytest.fail("job never reached a mid-run state")
    finally:
        first.send_signal(signal.SIGTERM)
        first.wait(timeout=60)

    # Restart over the same spool: the journal re-enqueues the job
    # and its checkpoint turns the re-run into a resume.
    port = _free_port()
    second = _spawn_server(port, spool)
    try:
        _wait_for_server(port)
        deadline = time.time() + 300
        while time.time() < deadline:
            _, doc = _request(port, "GET", "/v1/jobs/big")
            if doc["state"] in ("done", "failed", "cancelled"):
                break
            time.sleep(0.2)
        assert doc["state"] == "done", doc
        _, resumed = _request(port, "GET", "/v1/jobs/big/result")
    finally:
        second.send_signal(signal.SIGTERM)
        second.wait(timeout=60)

    assert resumed == reference

    # The server restart actually recovered (rather than re-ran from
    # scratch): its boot line reports the resumed job.
    output = second.stdout.read() if second.stdout else ""
    assert "1 jobs resumed" in output
