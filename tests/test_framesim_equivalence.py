"""Cross-simulator equivalence of the batched Pauli-frame sampler.

Three independent implementations of the same physics must agree:

* the batched frame sampler (:mod:`repro.sim.framesim`) against the
  *exact* outcome distribution enumerated on the dense state-vector
  simulator (chi-square),
* the batched sampler against per-shot tableau loops, noiseless and
  under the depolarizing error layer (chi-square homogeneity),
* a Pauli-frame stack against a frame-less stack under identical
  seeds and identical injected noise: syndromes must match *bit for
  bit* — the paper's central invariant, tested exactly rather than
  statistically.

All randomness is seeded, so every assertion here is deterministic;
the chi-square thresholds only have to absorb the sampling noise of
the fixed draws.
"""

import numpy as np
import pytest
from scipy import stats

from repro.circuits import Circuit, random_clifford_circuit
from repro.circuits.operation import Operation
from repro.codes.surface17 import Z_CHECK_MATRIX, parallel_esm
from repro.qpdo import (
    BatchedStabilizerCore,
    DepolarizingErrorLayer,
    PauliFrameLayer,
    StabilizerCore,
)
from repro.sim import (
    BatchedFrameSampler,
    NoiseParameters,
    StabilizerSimulator,
    StateVectorSimulator,
    compile_frame_program,
    sample_circuit,
)

P_VALUE_FLOOR = 1e-3


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def random_measured_circuit(
    num_qubits: int,
    num_gates: int,
    rng: np.random.Generator,
    measure_probability: float = 0.12,
    prep_probability: float = 0.05,
) -> Circuit:
    """A random Clifford circuit with interleaved prep/measure ops."""
    base = random_clifford_circuit(num_qubits, num_gates, rng=rng)
    circuit = Circuit("measured")
    for qubit in range(num_qubits):
        circuit.add("prep_z", qubit)
    for operation in base.operations():
        circuit.add(operation.name, *operation.qubits)
        draw = rng.random()
        victim = int(rng.integers(num_qubits))
        if draw < prep_probability:
            circuit.add("prep_z", victim)
        elif draw < prep_probability + measure_probability:
            circuit.add("measure", victim)
    # Final readout of every qubit so the joint distribution is rich.
    for qubit in range(num_qubits):
        circuit.add("measure", qubit)
    return circuit


def exact_distribution(circuit: Circuit, num_qubits: int) -> dict:
    """Exact joint outcome distribution via branch enumeration.

    Walks the circuit on the dense simulator; at every measurement (and
    at the measurement inside every reset of a dirty qubit) both
    branches are explored with :meth:`StateVectorSimulator.postselect`,
    multiplying branch probabilities.  Returns outcome-tuple -> prob.
    """
    operations = list(circuit.operations())
    distribution: dict = {}

    def walk(sim: StateVectorSimulator, index: int, bits, weight: float):
        if weight < 1e-12:
            return
        while index < len(operations):
            op = operations[index]
            index += 1
            if op.is_measurement or op.is_preparation:
                qubit = op.qubits[0]
                p_one = sim.probability_of_one(qubit)
                for outcome, p in ((0, 1.0 - p_one), (1, p_one)):
                    if p < 1e-12:
                        continue
                    branch = sim.copy()
                    branch.postselect(qubit, outcome)
                    if op.is_preparation:
                        if outcome:
                            branch.apply_gate("x", (qubit,))
                        walk(branch, index, bits, weight * p)
                    else:
                        walk(
                            branch,
                            index,
                            bits + (outcome,),
                            weight * p,
                        )
                return
            sim.apply_gate(op.name, op.qubits, op.params)
        distribution[bits] = distribution.get(bits, 0.0) + weight

    walk(StateVectorSimulator(num_qubits), 0, (), 1.0)
    return distribution


def tableau_shot_loop(
    circuit: Circuit, num_qubits: int, shots: int, seed: int
) -> np.ndarray:
    """Reference per-shot tableau sampling of ``circuit``."""
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(shots):
        sim = StabilizerSimulator(num_qubits, rng=rng)
        row = []
        for op in circuit.operations():
            if op.is_preparation:
                sim.reset(op.qubits[0])
            elif op.is_measurement:
                row.append(sim.measure(op.qubits[0]))
            else:
                sim.apply_gate(op.name, op.qubits)
        rows.append(row)
    return np.array(rows, dtype=bool)


def outcome_counts(samples: np.ndarray) -> dict:
    """Map outcome tuples to observed counts."""
    counts: dict = {}
    for row in samples:
        key = tuple(int(b) for b in row)
        counts[key] = counts.get(key, 0) + 1
    return counts


# ----------------------------------------------------------------------
# Batched sampler vs exact state-vector probabilities
# ----------------------------------------------------------------------
class TestBatchedMatchesStateVector:
    """Chi-square of batched samples against the exact distribution."""

    @pytest.mark.parametrize(
        "num_qubits,num_gates,seed",
        [(2, 8, 11), (3, 12, 22), (4, 16, 33), (5, 20, 44), (6, 18, 55)],
    )
    def test_joint_distribution(self, num_qubits, num_gates, seed):
        rng = np.random.default_rng(seed)
        circuit = random_measured_circuit(num_qubits, num_gates, rng)
        expected = exact_distribution(circuit, num_qubits)
        shots = 3000
        samples = sample_circuit(
            circuit, shots, seed=seed + 1000, num_qubits=num_qubits
        )
        observed = outcome_counts(samples)
        # No sampled outcome may fall outside the exact support.
        support = set(expected)
        assert set(observed) <= support
        keys = sorted(support)
        f_exp = np.array([expected[k] * shots for k in keys])
        f_obs = np.array([observed.get(k, 0) for k in keys])
        # Pool tiny-probability outcomes to keep chi-square valid.
        big = f_exp >= 5.0
        f_exp = np.append(f_exp[big], f_exp[~big].sum())
        f_obs = np.append(f_obs[big], f_obs[~big].sum())
        if f_exp[-1] == 0.0:
            f_exp, f_obs = f_exp[:-1], f_obs[:-1]
        if len(f_exp) < 2:
            assert f_obs.sum() == shots
            return
        result = stats.chisquare(f_obs, f_exp * shots / f_exp.sum())
        assert result.pvalue > P_VALUE_FLOOR, (
            num_qubits,
            seed,
            result.pvalue,
        )

    def test_deterministic_circuit_is_exact(self):
        """A GHZ readout has only two outcomes — matched exactly."""
        circuit = Circuit("ghz")
        for qubit in range(4):
            circuit.add("prep_z", qubit)
        circuit.add("h", 0)
        for qubit in range(3):
            circuit.add("cnot", qubit, qubit + 1)
        for qubit in range(4):
            circuit.add("measure", qubit)
        samples = sample_circuit(circuit, 500, seed=7)
        for row in samples:
            assert row.all() or not row.any()

    def test_reference_bits_follow_reference_tableau(self):
        """The compiled reference equals an identically-seeded tableau."""
        rng = np.random.default_rng(17)
        circuit = random_measured_circuit(4, 14, rng)
        program = compile_frame_program(
            circuit, num_qubits=4, reference_seed=99
        )
        sim = StabilizerSimulator(4, seed=99)
        expected = []
        for op in circuit.operations():
            if op.is_preparation:
                sim.reset(op.qubits[0])
            elif op.is_measurement:
                expected.append(bool(sim.measure(op.qubits[0])))
            else:
                sim.apply_gate(op.name, op.qubits)
        assert program.reference_bits.tolist() == expected


# ----------------------------------------------------------------------
# Batched sampler vs per-shot tableau loops
# ----------------------------------------------------------------------
class TestBatchedMatchesTableauLoop:
    """Chi-square homogeneity of batched vs per-shot tableau samples."""

    @pytest.mark.parametrize(
        "num_qubits,num_gates,seed",
        [(3, 10, 5), (5, 18, 6), (8, 26, 7), (8, 30, 8)],
    )
    def test_noiseless_distributions_agree(
        self, num_qubits, num_gates, seed
    ):
        rng = np.random.default_rng(seed)
        circuit = random_measured_circuit(num_qubits, num_gates, rng)
        shots = 1500
        loop = tableau_shot_loop(
            circuit, num_qubits, shots, seed=seed + 1
        )
        batched = sample_circuit(
            circuit, shots, seed=seed + 2, num_qubits=num_qubits
        )
        assert batched.shape == loop.shape
        self._assert_same_distribution(loop, batched, seed)

    def test_noisy_channel_matches_error_layer_loop(self):
        """Batched depolarizing noise vs DepolarizingErrorLayer loops.

        The same 3-qubit circuit runs (a) per shot through a
        ``StabilizerCore`` under the error layer and (b) once through
        the batched sampler with built-in noise of the same
        probability.  The two outcome distributions must agree.
        """
        probability = 0.08
        circuit = Circuit("noisy")
        for qubit in range(3):
            circuit.add("prep_z", qubit)
        circuit.add("h", 0)
        circuit.add("cnot", 0, 1)
        circuit.add("cnot", 1, 2)
        circuit.add("s", 2)
        circuit.add("h", 2)
        measures = [circuit.add("measure", q) for q in range(3)]

        shots = 1200
        rng = np.random.default_rng(314)
        loop_rows = []
        for _ in range(shots):
            core = StabilizerCore(rng=rng)
            stack = DepolarizingErrorLayer(
                core, probability=probability, rng=rng
            )
            stack.createqubit(3)
            result = stack.run(circuit.copy(fresh_uids=False))
            loop_rows.append(
                [result.result_of(m) for m in measures]
            )
        loop = np.array(loop_rows, dtype=bool)
        batched = sample_circuit(
            circuit,
            shots,
            seed=2718,
            noise=NoiseParameters(probability),
            num_qubits=3,
        )
        self._assert_same_distribution(loop, batched, seed=314)

    @staticmethod
    def _assert_same_distribution(a: np.ndarray, b: np.ndarray, seed):
        counts_a = outcome_counts(a)
        counts_b = outcome_counts(b)
        keys = sorted(set(counts_a) | set(counts_b))
        table = np.array(
            [
                [counts_a.get(k, 0) for k in keys],
                [counts_b.get(k, 0) for k in keys],
            ]
        )
        # Pool rare outcomes (expected count < 5) into one cell.
        expected = stats.contingency.expected_freq(table)
        rare = expected.min(axis=0) < 5.0
        if rare.any() and (~rare).any():
            pooled = np.concatenate(
                [
                    table[:, ~rare],
                    table[:, rare].sum(axis=1, keepdims=True),
                ],
                axis=1,
            )
        else:
            pooled = table
        if pooled.shape[1] < 2:
            return  # single outcome: trivially identical
        result = stats.chi2_contingency(pooled)
        assert result.pvalue > P_VALUE_FLOOR, (seed, result.pvalue)


# ----------------------------------------------------------------------
# Frame-on vs frame-off: exact syndrome equality (the paper's invariant)
# ----------------------------------------------------------------------
class TestFrameOnOffIdenticalSyndromes:
    """A Pauli-frame stack and a frame-less stack, driven with the same
    seed, the same injected physical errors and the same commanded
    Pauli corrections, must report *identical* syndromes every round.

    This is exact, not statistical: corrections are Paulis, so the
    frame-less state differs from the framed state by exactly the
    tracked Pauli operator; every deterministic measurement outcome
    then differs by the record's X component — which is precisely what
    the frame's Table 3.2 mapping adds back.  Pauli gates consume no
    tableau randomness, so the two RNG streams stay aligned.
    """

    SEED = 421

    @staticmethod
    def _inject_errors(target, qubits_gates):
        circuit = Circuit("noise")
        slot = circuit.new_slot()
        for gate, qubit in qubits_gates:
            slot.add(Operation(gate, (qubit,), is_error=True))
        target.add(circuit)
        target.execute()

    @staticmethod
    def _command_corrections(target, qubits_gates):
        circuit = Circuit("corrections")
        slot = circuit.new_slot()
        for gate, qubit in qubits_gates:
            slot.add(Operation(gate, (qubit,)))
        target.add(circuit)
        target.execute()

    def _esm_syndromes(self, target):
        esm = parallel_esm(list(range(17)))
        target.add(esm.circuit)
        return esm.syndromes(target.execute())

    @pytest.mark.parametrize("rounds", [4])
    def test_exact_syndrome_equality(self, rounds):
        framed = PauliFrameLayer(StabilizerCore(seed=self.SEED))
        framed.createqubit(17)
        plain = StabilizerCore(seed=self.SEED)
        plain.createqubit(17)

        # Projection round: frames are clean, streams identical.
        assert self._esm_syndromes(framed) == self._esm_syndromes(plain)

        pattern_rng = np.random.default_rng(97)
        gates = ("x", "y", "z")
        for _ in range(rounds):
            # Identical pre-sampled physical errors into both stacks.
            errors = [
                (gates[int(pattern_rng.integers(3))], qubit)
                for qubit in range(9)
                if pattern_rng.random() < 0.25
            ]
            if errors:
                self._inject_errors(framed, errors)
                self._inject_errors(plain, errors)
            # Identical commanded Pauli corrections: absorbed by the
            # frame on one stack, physically applied on the other.
            corrections = [
                (gates[int(pattern_rng.integers(3))], qubit)
                for qubit in range(9)
                if pattern_rng.random() < 0.2
            ]
            if corrections:
                self._command_corrections(framed, corrections)
                self._command_corrections(plain, corrections)
            assert self._esm_syndromes(framed) == self._esm_syndromes(
                plain
            )

    def test_frame_records_equal_commanded_corrections(self):
        """After absorbing corrections the frame holds exactly them."""
        framed = PauliFrameLayer(StabilizerCore(seed=5))
        framed.createqubit(17)
        self._esm_syndromes(framed)
        self._command_corrections(framed, [("x", 0), ("y", 4), ("z", 8)])
        records = framed.frame.nontrivial()
        assert {q: r.name for q, r in records.items()} == {
            0: "X",
            4: "XZ",
            8: "Z",
        }


# ----------------------------------------------------------------------
# Batched core vs batched compiler on the ESM workload
# ----------------------------------------------------------------------
class TestBatchedCoreMatchesCompiledSampler:
    """The streaming core and the one-shot compiler agree on the SC17
    ESM workload's syndrome statistics."""

    def test_first_round_syndrome_rates_agree(self):
        probability = 0.01
        shots = 4000
        esm = parallel_esm(list(range(17)))

        core = BatchedStabilizerCore(
            shots,
            noise=NoiseParameters(
                probability, active_qubits=range(17)
            ),
            seed=1,
        )
        core.createqubit(17)
        prep = Circuit("prep")
        slot = prep.new_slot()
        for qubit in range(9):
            slot.add(Operation("prep_z", (qubit,)))
        core.run(prep)
        first = core.run(esm.circuit)
        second_esm = parallel_esm(list(range(17)))
        second = core.run(second_esm.circuit)
        z_first = np.stack(
            [first.bits_of(m) for m in esm.x_measurements]
            + [first.bits_of(m) for m in esm.z_measurements],
            axis=1,
        )
        z_second = np.stack(
            [second.bits_of(m) for m in second_esm.x_measurements]
            + [second.bits_of(m) for m in second_esm.z_measurements],
            axis=1,
        )
        # Round-over-round syndrome *changes* isolate the noise (the
        # first round's X checks are random projections).
        streaming_rate = (z_first ^ z_second).mean()

        circuit = Circuit("two_rounds")
        slot = circuit.new_slot()
        for qubit in range(9):
            slot.add(Operation("prep_z", (qubit,)))
        esm_a = parallel_esm(list(range(17)))
        esm_b = parallel_esm(list(range(17)))
        circuit.extend(esm_a.circuit)
        circuit.extend(esm_b.circuit)
        samples = sample_circuit(
            circuit,
            shots,
            seed=2,
            noise=NoiseParameters(
                probability, active_qubits=range(17)
            ),
            num_qubits=17,
        )
        program_cols = {}
        program = compile_frame_program(
            circuit,
            num_qubits=17,
            noise=NoiseParameters(probability, active_qubits=range(17)),
            reference_seed=3,
        )
        for index, uid in enumerate(program.measurement_uids):
            program_cols[uid] = index
        a_cols = [
            program_cols[m.uid]
            for m in esm_a.x_measurements + esm_a.z_measurements
        ]
        b_cols = [
            program_cols[m.uid]
            for m in esm_b.x_measurements + esm_b.z_measurements
        ]
        compiled_rate = (
            samples[:, a_cols] ^ samples[:, b_cols]
        ).mean()
        assert streaming_rate == pytest.approx(
            compiled_rate, abs=0.01
        )
        assert 0.0 < streaming_rate < 0.5


# ----------------------------------------------------------------------
# Frame-transparent Paulis
# ----------------------------------------------------------------------
class TestPauliTransparency:
    """Pauli gates shift the reference, never the frames — flipping a
    data qubit flips exactly the affected Z checks for every shot."""

    def test_reference_x_flips_z_checks_for_all_shots(self):
        circuit = Circuit("flip")
        slot = circuit.new_slot()
        for qubit in range(9):
            slot.add(Operation("prep_z", (qubit,)))
        esm_a = parallel_esm(list(range(17)))
        circuit.extend(esm_a.circuit)
        circuit.add("x", 4)
        esm_b = parallel_esm(list(range(17)))
        circuit.extend(esm_b.circuit)
        samples = sample_circuit(circuit, 64, seed=12, num_qubits=17)
        program = compile_frame_program(
            circuit, num_qubits=17, reference_seed=12
        )
        cols = {
            uid: index
            for index, uid in enumerate(program.measurement_uids)
        }
        before = samples[
            :, [cols[m.uid] for m in esm_a.z_measurements]
        ]
        after = samples[
            :, [cols[m.uid] for m in esm_b.z_measurements]
        ]
        expected = Z_CHECK_MATRIX[:, 4].astype(bool)
        delta = before ^ after
        assert np.array_equal(
            delta, np.tile(expected, (64, 1))
        )
