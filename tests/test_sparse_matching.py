"""The scipy-sparse local-matching MWPM alternative.

The sparse decoder must be *weight-exact* against the Blossom
reference wherever its subset-DP pairing applies (up to
:data:`~repro.decoders.sparse.MAX_EXACT_DEFECTS` defects): equal
total correction weight and the same homology class inside the
correction radius.  Beyond the DP ceiling the greedy pairing only has
to stay sound (silencing corrections, deterministic).
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes.rotated import RotatedSurfaceCode
from repro.decoders import (
    MwpmDecoder,
    boundary_qubits_for,
    syndrome_of,
)
from repro.decoders.sparse import (
    MAX_EXACT_DEFECTS,
    SparseMwpmDecoder,
    SparseSpaceTimeMatchingDecoder,
    _min_cost_pairing,
)


def _decoders(code):
    check = code.z_check_matrix
    boundary = boundary_qubits_for(code, "z")
    return (
        SparseMwpmDecoder(check, boundary),
        MwpmDecoder(check, boundary),
    )


def _logical_mask(code):
    mask = np.zeros(code.num_data, dtype=bool)
    for qubit in code.logical_z_support():
        mask[qubit] = True
    return mask


def _assert_valid(code, error, correction):
    residual = error.astype(bool) ^ correction
    assert not syndrome_of(
        code.z_check_matrix, residual.astype(np.uint8)
    ).any()
    return residual


class TestWeightExactness:
    @pytest.mark.parametrize("distance", [3, 5])
    def test_single_errors_weight_and_class_match(self, distance):
        code = RotatedSurfaceCode(distance)
        sparse, blossom = _decoders(code)
        logical = _logical_mask(code)
        for qubit in range(code.num_data):
            error = np.zeros(code.num_data, dtype=np.uint8)
            error[qubit] = 1
            syndrome = syndrome_of(code.z_check_matrix, error)
            sparse_corr = sparse.decode(syndrome)
            blossom_corr = blossom.decode(syndrome)
            residual_sp = _assert_valid(code, error, sparse_corr)
            residual_bl = _assert_valid(code, error, blossom_corr)
            assert int(sparse_corr.sum()) == int(blossom_corr.sum())
            assert (
                int((residual_sp & logical).sum()) % 2
                == int((residual_bl & logical).sum()) % 2
            )

    def test_all_weight_two_errors_weight_exact_at_d5(self):
        code = RotatedSurfaceCode(5)
        sparse, blossom = _decoders(code)
        logical = _logical_mask(code)
        for a, b in itertools.combinations(range(code.num_data), 2):
            error = np.zeros(code.num_data, dtype=np.uint8)
            error[a] = error[b] = 1
            syndrome = syndrome_of(code.z_check_matrix, error)
            sparse_corr = sparse.decode(syndrome)
            blossom_corr = blossom.decode(syndrome)
            residual_sp = _assert_valid(code, error, sparse_corr)
            residual_bl = _assert_valid(code, error, blossom_corr)
            assert int(sparse_corr.sum()) == int(
                blossom_corr.sum()
            ), (a, b)
            assert (
                int((residual_sp & logical).sum()) % 2
                == int((residual_bl & logical).sum()) % 2
            ), (a, b)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_random_syndromes_decode_validly(self, seed):
        rng = np.random.default_rng(seed)
        code = RotatedSurfaceCode(5)
        sparse, _ = _decoders(code)
        error = (rng.random(code.num_data) < 0.1).astype(np.uint8)
        syndrome = syndrome_of(code.z_check_matrix, error)
        _assert_valid(code, error, sparse.decode(syndrome))


class TestExactPairingDP:
    @staticmethod
    def _brute_force(pair_cost, boundary_cost):
        m = boundary_cost.shape[0]
        best = np.inf

        def recurse(unmatched, cost):
            nonlocal best
            if cost >= best:
                return
            if not unmatched:
                best = cost
                return
            first, rest = unmatched[0], unmatched[1:]
            recurse(list(rest), cost + boundary_cost[first])
            for index, partner in enumerate(rest):
                remaining = list(rest[:index]) + list(rest[index + 1:])
                recurse(
                    remaining, cost + pair_cost[first, partner]
                )

        recurse(list(range(m)), 0.0)
        return best

    @staticmethod
    def _pairing_cost(pairs, pair_cost, boundary_cost):
        total = 0.0
        for i, j in pairs:
            total += (
                boundary_cost[i] if j < 0 else pair_cost[i, j]
            )
        return total

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_dp_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        m = int(rng.integers(1, 7))
        pair_cost = rng.integers(1, 20, size=(m, m)).astype(float)
        pair_cost = (pair_cost + pair_cost.T) / 2
        np.fill_diagonal(pair_cost, 0.0)
        boundary_cost = rng.integers(1, 20, size=m).astype(float)
        pairs = _min_cost_pairing(pair_cost, boundary_cost)
        # Every defect appears exactly once.
        covered = sorted(
            index for pair in pairs for index in pair if index >= 0
        )
        assert covered == sorted(set(covered))
        assert set(covered) == set(range(m))
        assert self._pairing_cost(
            pairs, pair_cost, boundary_cost
        ) == pytest.approx(
            self._brute_force(pair_cost, boundary_cost)
        )


class TestBatchAndSpaceTime:
    def test_decode_batch_equals_per_shot(self):
        rng = np.random.default_rng(17)
        code = RotatedSurfaceCode(5)
        sparse, _ = _decoders(code)
        errors = rng.random((16, code.num_data)) < 0.08
        syndromes = (
            errors.astype(np.uint8) @ code.z_check_matrix.T
        ) % 2
        batch = sparse.decode_batch(syndromes.astype(bool))
        for shot in range(syndromes.shape[0]):
            assert np.array_equal(
                batch[shot], sparse.decode(syndromes[shot])
            )

    def test_spacetime_batch_equals_history(self):
        rng = np.random.default_rng(23)
        code = RotatedSurfaceCode(3)
        decoder = SparseSpaceTimeMatchingDecoder(
            code.z_check_matrix, boundary_qubits_for(code, "z")
        )
        histories = rng.random((8, 4, len(code.z_plaquettes))) < 0.2
        batch = decoder.decode_batch(histories)
        for shot in range(histories.shape[0]):
            assert np.array_equal(
                batch[shot], decoder.decode_history(histories[shot])
            )

    def test_greedy_fallback_beyond_dp_ceiling(self):
        """> MAX_EXACT_DEFECTS defects: greedy pairing, still sound."""
        rng = np.random.default_rng(31)
        code = RotatedSurfaceCode(5)
        decoder = SparseSpaceTimeMatchingDecoder(
            code.z_check_matrix, boundary_qubits_for(code, "z")
        )
        num_checks = len(code.z_plaquettes)
        history = rng.random((8, num_checks)) < 0.35
        events = decoder.detection_events(history)
        assert len(events) > MAX_EXACT_DEFECTS
        first = decoder.decode_history(history)
        second = decoder.decode_history(history)
        assert first.shape == (code.num_data,)
        assert np.array_equal(first, second)
