"""Seed determinism of the batched sampler and the batched core.

The reproducibility contract of :mod:`repro.sim.framesim`:

* the same seed always yields bit-identical sample arrays,
* batch splits are invisible — ``sample(1000)`` equals the
  concatenation of ten consecutive ``sample(100)`` calls, bit for bit
  (each random instruction owns one RNG stream and every call simply
  continues it),
* different seeds yield different arrays (no accidental stream
  reuse),
* the full compile-and-sample helper is a pure function of
  ``(circuit, shots, seed, noise)``.
"""

import numpy as np
import pytest

from repro.circuits import Circuit, random_clifford_circuit
from repro.circuits.operation import Operation
from repro.codes.surface17 import parallel_esm
from repro.experiments import BatchedLerExperiment
from repro.qpdo import BatchedStabilizerCore
from repro.sim import (
    BatchedFrameSampler,
    NoiseParameters,
    compile_frame_program,
    sample_circuit,
)


def noisy_test_circuit(seed: int = 0, num_qubits: int = 6) -> Circuit:
    """A representative circuit: Cliffords, resets and measurements."""
    rng = np.random.default_rng(seed)
    base = random_clifford_circuit(num_qubits, 30, rng=rng)
    circuit = Circuit("determinism")
    for qubit in range(num_qubits):
        circuit.add("prep_z", qubit)
    for index, operation in enumerate(base.operations()):
        circuit.add(operation.name, *operation.qubits)
        if index % 5 == 4:
            circuit.add("measure", int(rng.integers(num_qubits)))
        if index % 11 == 10:
            circuit.add("prep_z", int(rng.integers(num_qubits)))
    for qubit in range(num_qubits):
        circuit.add("measure", qubit)
    return circuit


NOISE = NoiseParameters(0.02)


class TestSamplerDeterminism:
    def _program(self):
        return compile_frame_program(
            noisy_test_circuit(),
            num_qubits=6,
            noise=NOISE,
            reference_seed=7,
        )

    def test_same_seed_bit_identical(self):
        program = self._program()
        a = BatchedFrameSampler(program, seed=123).sample(800)
        b = BatchedFrameSampler(program, seed=123).sample(800)
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("split", [(10, 100), (4, 250), (1000, 1)])
    def test_batch_split_invisible(self, split):
        """1 x 1000 shots == pieces x size shots, concatenated."""
        pieces, size = split
        program = self._program()
        whole = BatchedFrameSampler(program, seed=55).sample(1000)
        sampler = BatchedFrameSampler(program, seed=55)
        parts = np.concatenate(
            [sampler.sample(size) for _ in range(pieces)]
        )
        assert np.array_equal(whole, parts)

    def test_uneven_batch_split_invisible(self):
        program = self._program()
        whole = BatchedFrameSampler(program, seed=9).sample(337)
        sampler = BatchedFrameSampler(program, seed=9)
        parts = np.concatenate(
            [sampler.sample(n) for n in (1, 100, 7, 200, 29)]
        )
        assert np.array_equal(whole, parts)

    def test_different_seeds_differ(self):
        program = self._program()
        a = BatchedFrameSampler(program, seed=1).sample(600)
        b = BatchedFrameSampler(program, seed=2).sample(600)
        assert not np.array_equal(a, b)

    def test_shots_sampled_counter(self):
        program = self._program()
        sampler = BatchedFrameSampler(program, seed=3)
        sampler.sample(10)
        sampler.sample(32)
        assert sampler.shots_sampled == 42

    def test_sample_packed_matches_sample(self):
        program = self._program()
        bits = BatchedFrameSampler(program, seed=4).sample(100)
        packed = BatchedFrameSampler(program, seed=4).sample_packed(100)
        assert np.array_equal(
            np.packbits(bits.astype(np.uint8), axis=1), packed
        )

    def test_sample_circuit_is_pure(self):
        circuit = noisy_test_circuit(seed=3)
        a = sample_circuit(circuit, 500, seed=77, noise=NOISE)
        b = sample_circuit(circuit, 500, seed=77, noise=NOISE)
        assert np.array_equal(a, b)

    def test_compilation_stream_layout_is_stable(self):
        """Stream indices depend only on the circuit, not the run."""
        circuit = noisy_test_circuit()
        first = compile_frame_program(
            circuit, num_qubits=6, noise=NOISE, reference_seed=7
        )
        second = compile_frame_program(
            circuit, num_qubits=6, noise=NOISE, reference_seed=7
        )
        assert first.num_streams == second.num_streams
        assert first.measurement_uids == second.measurement_uids
        assert [i[0] for i in first.instructions] == [
            i[0] for i in second.instructions
        ]


class TestBatchedCoreDeterminism:
    @staticmethod
    def _run_core(seed: int, shots: int = 250) -> np.ndarray:
        core = BatchedStabilizerCore(
            shots,
            noise=NoiseParameters(0.02, active_qubits=range(17)),
            seed=seed,
        )
        core.createqubit(17)
        prep = Circuit("prep")
        slot = prep.new_slot()
        for qubit in range(9):
            slot.add(Operation("prep_z", (qubit,)))
        core.run(prep)
        columns = []
        for _ in range(3):
            esm = parallel_esm(list(range(17)))
            result = core.run(esm.circuit)
            for measure in esm.x_measurements + esm.z_measurements:
                columns.append(result.bits_of(measure))
        return np.stack(columns, axis=1)

    def test_same_seed_bit_identical(self):
        assert np.array_equal(self._run_core(31), self._run_core(31))

    def test_different_seeds_differ(self):
        assert not np.array_equal(self._run_core(31), self._run_core(32))

    def test_batched_ler_experiment_reproducible(self):
        def run():
            results = BatchedLerExperiment(
                8e-3, num_shots=60, windows=6, seed=2017
            ).run()
            return [
                (r.logical_errors, r.clean_windows, r.corrections_commanded)
                for r in results
            ]

        assert run() == run()
