"""Cross-validation of the paper's mapping tables against matrices.

Every row of Tables 3.2-3.5 is checked against explicit matrix
conjugation: for a record ``R`` and gate ``C``, the table's output
``R'`` must satisfy ``C @ M(R) = phase * M(R') @ C`` for some unit
phase -- i.e. commuting the record through the gate reproduces the
mapped record up to the global phase the paper drops.
"""

import itertools

import numpy as np
import pytest

from repro.gates.matrices import (
    CNOT_MATRIX,
    CZ_MATRIX,
    H_MATRIX,
    I_MATRIX,
    S_MATRIX,
    SDG_MATRIX,
    SWAP_MATRIX,
    X_MATRIX,
    Z_MATRIX,
    matrices_equal_up_to_phase,
)
from repro.paulis.record import PauliRecord
from repro.paulis.tables import (
    CNOT_MAP_TABLE,
    CZ_MAP_TABLE,
    MEASUREMENT_FLIP_TABLE,
    PAULI_MAP_TABLE,
    SINGLE_CLIFFORD_MAP_TABLE,
    SINGLE_QUBIT_MAP_TABLES,
    SWAP_MAP_TABLE,
    TWO_QUBIT_MAP_TABLES,
)

RECORD_MATRICES = {
    PauliRecord.I: I_MATRIX,
    PauliRecord.X: X_MATRIX,
    PauliRecord.Z: Z_MATRIX,
    PauliRecord.XZ: X_MATRIX @ Z_MATRIX,
}

GATE_MATRICES = {
    "i": I_MATRIX,
    "x": X_MATRIX,
    "y": X_MATRIX @ Z_MATRIX,  # up to phase, the tracked form of Y
    "z": Z_MATRIX,
    "h": H_MATRIX,
    "s": S_MATRIX,
    "sdg": SDG_MATRIX,
}


class TestPauliMapTable:
    """Table 3.3: tracking a Pauli gate composes the records."""

    @pytest.mark.parametrize(
        "record,gate",
        list(itertools.product(list(PauliRecord), ["i", "x", "y", "z"])),
    )
    def test_row_matches_matrix_product(self, record, gate):
        output = PAULI_MAP_TABLE[(record, gate)]
        product = GATE_MATRICES[gate] @ RECORD_MATRICES[record]
        assert matrices_equal_up_to_phase(
            product, RECORD_MATRICES[output]
        )


class TestSingleCliffordMapTable:
    """Table 3.4: C R = R' C up to global phase."""

    @pytest.mark.parametrize(
        "record,gate",
        list(itertools.product(list(PauliRecord), ["h", "s", "sdg"])),
    )
    def test_row_matches_conjugation(self, record, gate):
        output = SINGLE_CLIFFORD_MAP_TABLE[(record, gate)]
        lhs = GATE_MATRICES[gate] @ RECORD_MATRICES[record]
        rhs = RECORD_MATRICES[output] @ GATE_MATRICES[gate]
        assert matrices_equal_up_to_phase(lhs, rhs)


def _two_qubit_record_matrix(control, target):
    return np.kron(RECORD_MATRICES[control], RECORD_MATRICES[target])


class TestTwoQubitMapTables:
    """Tables 3.5 (CNOT) and the derived CZ/SWAP tables."""

    @pytest.mark.parametrize(
        "table,gate_matrix",
        [
            (CNOT_MAP_TABLE, CNOT_MATRIX),
            (CZ_MAP_TABLE, CZ_MATRIX),
            (SWAP_MAP_TABLE, SWAP_MATRIX),
        ],
        ids=["cnot", "cz", "swap"],
    )
    def test_all_rows_match_conjugation(self, table, gate_matrix):
        for (control, target), (out_c, out_t) in table.items():
            lhs = gate_matrix @ _two_qubit_record_matrix(control, target)
            rhs = _two_qubit_record_matrix(out_c, out_t) @ gate_matrix
            assert matrices_equal_up_to_phase(lhs, rhs), (
                control,
                target,
                out_c,
                out_t,
            )

    def test_cnot_table_is_complete(self):
        assert len(CNOT_MAP_TABLE) == 16

    def test_cnot_table_printed_rows(self):
        """Spot-check the exact rows printed in Table 3.5."""
        I, X, Z, XZ = (
            PauliRecord.I,
            PauliRecord.X,
            PauliRecord.Z,
            PauliRecord.XZ,
        )
        assert CNOT_MAP_TABLE[(I, Z)] == (Z, Z)
        assert CNOT_MAP_TABLE[(X, X)] == (X, I)
        assert CNOT_MAP_TABLE[(X, Z)] == (XZ, XZ)
        assert CNOT_MAP_TABLE[(XZ, XZ)] == (X, Z)
        assert CNOT_MAP_TABLE[(Z, XZ)] == (I, XZ)


class TestMeasurementTable:
    """Table 3.2 against direct expectation values.

    A record ``R`` on ``|0>`` or ``|1>`` flips the Z-measurement
    outcome exactly when ``<b| R^dag Z R |b> = -<b| Z |b>``.
    """

    @pytest.mark.parametrize("record", list(PauliRecord))
    def test_flip_prediction(self, record):
        matrix = RECORD_MATRICES[record]
        zero = np.array([1, 0], dtype=complex)
        transformed = matrix @ zero
        expectation = np.real(
            transformed.conj() @ (Z_MATRIX @ transformed)
        ) / np.real(transformed.conj() @ transformed)
        flipped = expectation < 0
        assert MEASUREMENT_FLIP_TABLE[record] == flipped


class TestTableIndexes:
    def test_single_qubit_dispatch_covers_all_gates(self):
        for gate in ("i", "x", "y", "z", "h", "s", "sdg"):
            assert gate in SINGLE_QUBIT_MAP_TABLES
            assert set(SINGLE_QUBIT_MAP_TABLES[gate]) == set(PauliRecord)

    def test_two_qubit_dispatch_covers_all_gates(self):
        for gate in ("cnot", "cx", "cz", "swap"):
            assert gate in TWO_QUBIT_MAP_TABLES
            assert len(TWO_QUBIT_MAP_TABLES[gate]) == 16

    def test_bitwise_and_table_implementations_agree(self):
        """The hardware tables and the bit arithmetic must coincide."""
        for record in PauliRecord:
            assert (
                SINGLE_QUBIT_MAP_TABLES["h"][record]
                is record.after_hadamard()
            )
            assert (
                SINGLE_QUBIT_MAP_TABLES["s"][record] is record.after_phase()
            )
        for pair, expected in CNOT_MAP_TABLE.items():
            assert PauliRecord.after_cnot(*pair) == expected
        for pair, expected in CZ_MAP_TABLE.items():
            assert PauliRecord.after_cz(*pair) == expected
