"""Tests for the distance-scaling experiment and the LER sweep driver."""

import numpy as np
import pytest

from repro.experiments.distance import (
    CodeCapacitySimulator,
    format_distance_table,
    run_distance_scaling,
)
from repro.experiments.sweep import format_sweep_table, run_ler_sweep


class TestCodeCapacity:
    def test_zero_noise_never_fails(self):
        simulator = CodeCapacitySimulator(3)
        rng = np.random.default_rng(0)
        result = simulator.estimate_ler(0.0, trials=50, rng=rng)
        assert result.logical_errors == 0
        assert result.logical_error_rate == 0.0

    def test_heavy_noise_often_fails(self):
        simulator = CodeCapacitySimulator(3)
        rng = np.random.default_rng(0)
        result = simulator.estimate_ler(0.4, trials=300, rng=rng)
        assert result.logical_error_rate > 0.2

    def test_distance_ordering_below_threshold(self):
        """Future-work claim: larger d lowers the LER below p_th."""
        results = run_distance_scaling(
            distances=(3, 5),
            per_values=(0.03,),
            trials=1200,
            seed=3,
        )
        assert (
            results[5][0].logical_error_rate
            < results[3][0].logical_error_rate
        )

    def test_threshold_crossover(self):
        """Far above threshold the ordering inverts (section 2.5.1)."""
        results = run_distance_scaling(
            distances=(3, 5),
            per_values=(0.30,),
            trials=400,
            seed=4,
        )
        assert (
            results[5][0].logical_error_rate
            >= results[3][0].logical_error_rate * 0.9
        )

    def test_format_table(self):
        results = run_distance_scaling(
            distances=(3,), per_values=(0.05,), trials=50, seed=1
        )
        text = format_distance_table(results)
        assert "LER(d=3)" in text


class TestLerSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return run_ler_sweep(
            per_values=[6e-3, 1.2e-2],
            samples=2,
            max_logical_errors=2,
            seed=100,
        )

    def test_point_structure(self, sweep):
        assert sweep.per_values() == [6e-3, 1.2e-2]
        assert len(sweep.points) == 2
        for point in sweep.points:
            assert len(point.without_frame) == 2
            assert len(point.with_frame) == 2

    def test_series_accessors(self, sweep):
        assert len(sweep.series(True)) == 2
        assert len(sweep.series(False)) == 2
        assert len(sweep.delta_series()) == 2
        assert len(sweep.sigma_series()) == 2
        assert len(sweep.rho_series()) == 2
        assert len(sweep.rho_series(paired=True)) == 2
        assert len(sweep.window_cov_series(True)) == 2
        savings = sweep.savings_series()
        assert len(savings["operations"]) == 2
        assert len(savings["slots"]) == 2

    def test_savings_within_analytic_bound(self, sweep):
        for fraction in sweep.savings_series()["slots"]:
            assert 0.0 <= fraction <= 1.0 / 17.0 + 1e-9

    def test_rho_values_are_probabilities(self, sweep):
        for rho in sweep.rho_series():
            assert 0.0 <= rho <= 1.0

    def test_format_table(self, sweep):
        text = format_sweep_table(sweep)
        assert "LER(no PF)" in text
        assert text.count("\n") == len(sweep.points)
