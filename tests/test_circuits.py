"""Unit tests for operations, time slots and circuits (Fig. 4.4)."""

import pytest

from repro.circuits import Circuit, Operation, TimeSlot, circuit_from_ops, op
from repro.gates import GateClass


class TestOperation:
    def test_arity_checked(self):
        with pytest.raises(ValueError):
            op("cnot", 0)
        with pytest.raises(ValueError):
            op("h", 0, 1)

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(ValueError):
            op("cnot", 1, 1)

    def test_params_checked(self):
        with pytest.raises(ValueError):
            op("rz", 0)
        operation = Operation("rz", (0,), (0.5,))
        assert operation.params == (0.5,)

    def test_uids_are_unique(self):
        a, b = op("x", 0), op("x", 0)
        assert a.uid != b.uid

    def test_copy_gets_fresh_uid(self):
        operation = op("h", 2)
        duplicate = operation.copy()
        assert duplicate.uid != operation.uid
        assert duplicate.name == "h" and duplicate.qubits == (2,)

    def test_with_qubits_retargets(self):
        operation = op("cnot", 0, 1)
        moved = operation.with_qubits((5, 7))
        assert moved.qubits == (5, 7)

    def test_classification_properties(self):
        assert op("measure", 0).is_measurement
        assert op("prep_z", 0).is_preparation
        assert op("y", 0).is_pauli
        assert op("t", 0).gate_class is GateClass.NON_CLIFFORD

    def test_error_flag(self):
        noisy = op("x", 0, is_error=True)
        assert noisy.is_error
        assert not op("x", 0).is_error


class TestTimeSlot:
    def test_conflicting_qubits_rejected(self):
        slot = TimeSlot()
        slot.add(op("cnot", 0, 1))
        with pytest.raises(ValueError):
            slot.add(op("h", 1))

    def test_can_accept(self):
        slot = TimeSlot([op("h", 0)])
        assert slot.can_accept(op("h", 1))
        assert not slot.can_accept(op("cnot", 0, 2))

    def test_qubit_set(self):
        slot = TimeSlot([op("cnot", 3, 5), op("h", 1)])
        assert slot.qubits() == {1, 3, 5}


class TestCircuit:
    def test_greedy_slot_packing(self):
        circuit = Circuit()
        circuit.add("h", 0)
        circuit.add("h", 1)  # fits in slot 0
        circuit.add("cnot", 0, 1)  # conflicts -> new slot
        assert circuit.num_slots() == 2
        assert len(circuit.slots[0]) == 2

    def test_same_slot_enforced(self):
        circuit = Circuit()
        circuit.add("h", 0)
        with pytest.raises(ValueError):
            circuit.add("x", 0, same_slot=True)

    def test_barrier_forces_new_slot(self):
        circuit = Circuit()
        circuit.add("h", 0)
        circuit.barrier()
        circuit.add("h", 1)
        assert circuit.num_slots() == 2

    def test_barrier_on_empty_is_noop(self):
        circuit = Circuit()
        circuit.barrier()
        circuit.add("h", 0)
        assert circuit.num_slots() == 1

    def test_extend_preserves_slots(self):
        a = Circuit()
        a.add("h", 0)
        b = Circuit()
        b.add("x", 0)
        b.barrier()
        b.add("z", 0)
        a.extend(b)
        assert a.num_slots() == 3

    def test_counts_and_census(self):
        circuit = Circuit()
        circuit.add("h", 0)
        circuit.add("x", 1)
        circuit.add("x", 0)
        census = circuit.gate_census()
        assert census == {"h": 1, "x": 2}
        assert circuit.num_operations() == 3

    def test_num_operations_excluding_errors(self):
        circuit = Circuit()
        circuit.append(op("h", 0))
        circuit.append(op("x", 0, is_error=True))
        assert circuit.num_operations() == 2
        assert circuit.num_operations(include_errors=False) == 1

    def test_measurements_in_order(self):
        circuit = Circuit()
        circuit.add("measure", 0)
        circuit.add("h", 1)
        circuit.add("measure", 1)
        measures = circuit.measurements()
        assert [m.qubits[0] for m in measures] == [0, 1]

    def test_qubits_and_max_qubit(self):
        circuit = Circuit()
        circuit.add("cnot", 2, 7)
        assert circuit.qubits() == {2, 7}
        assert circuit.max_qubit() == 7
        assert Circuit().max_qubit() == -1

    def test_copy_shares_operations_by_default(self):
        circuit = Circuit()
        operation = circuit.add("h", 0)
        duplicate = circuit.copy()
        assert next(duplicate.operations()) is operation

    def test_copy_fresh_uids(self):
        circuit = Circuit()
        operation = circuit.add("h", 0)
        duplicate = circuit.copy(fresh_uids=True)
        copied = next(duplicate.operations())
        assert copied.uid != operation.uid

    def test_remapped(self):
        circuit = Circuit()
        circuit.add("cnot", 0, 1)
        mapped = circuit.remapped({0: 10, 1: 11})
        assert next(mapped.operations()).qubits == (10, 11)

    def test_bypass_flag_propagates_to_copies(self):
        circuit = Circuit("diag", bypass=True)
        assert circuit.copy().bypass

    def test_circuit_from_ops(self):
        circuit = circuit_from_ops([op("h", 0), op("x", 1), op("x", 0)])
        assert circuit.num_slots() == 2
