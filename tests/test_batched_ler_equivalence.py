"""The required equivalence gate for the batched LER decode path.

`BatchedLerExperiment` decodes with the array-native
:class:`~repro.decoders.batched.BatchedWindowedLutDecoder` by default;
``decoder_impl="per-shot"`` keeps the pre-vectorization reference (one
scalar :class:`~repro.decoders.rule_based.WindowedLutDecoder` per
shot).  Because decoder decisions feed back into the cores' frame
state, any divergence — in the tables, the vote, the carry-state or
the correction masks — cascades into different syndrome streams, so
comparing final :class:`~repro.experiments.results.BatchCounts` bit
for bit is a complete end-to-end check of the batched hot path.
"""

import numpy as np
import pytest

from repro import telemetry
from repro.decoders import clear_lut_cache
from repro.experiments.ler import BatchedLerExperiment


def _counts(decoder_impl, seed, per=8e-3, use_frame=True, kind="x", **kw):
    return BatchedLerExperiment(
        per,
        num_shots=kw.pop("num_shots", 6),
        use_pauli_frame=use_frame,
        error_kind=kind,
        windows=kw.pop("windows", 8),
        seed=seed,
        decoder_impl=decoder_impl,
        **kw,
    ).run_counts()


def _assert_identical(batched, per_shot):
    assert np.array_equal(batched.logical_errors, per_shot.logical_errors)
    assert np.array_equal(batched.clean_windows, per_shot.clean_windows)
    assert np.array_equal(
        batched.corrections_commanded, per_shot.corrections_commanded
    )


class TestBitIdenticalCounts:
    @pytest.mark.parametrize("seed", [0, 7, 2017])
    @pytest.mark.parametrize("use_frame", [False, True])
    def test_both_arms(self, seed, use_frame):
        _assert_identical(
            _counts("batched", seed, use_frame=use_frame),
            _counts("per-shot", seed, use_frame=use_frame),
        )

    @pytest.mark.parametrize("kind", ["x", "z"])
    def test_both_error_kinds(self, kind):
        _assert_identical(
            _counts("batched", 42, kind=kind),
            _counts("per-shot", 42, kind=kind),
        )

    def test_single_shot_batch(self):
        _assert_identical(
            _counts("batched", 3, num_shots=1),
            _counts("per-shot", 3, num_shots=1),
        )

    def test_without_majority_vote(self):
        _assert_identical(
            _counts("batched", 5, use_majority_vote=False),
            _counts("per-shot", 5, use_majority_vote=False),
        )

    def test_three_round_windows(self):
        """Odd window size exercises the drop-oldest vote rule."""
        _assert_identical(
            _counts("batched", 6, rounds_per_window=3),
            _counts("per-shot", 6, rounds_per_window=3),
        )

    def test_wider_batch_near_threshold(self):
        _assert_identical(
            _counts("batched", 1, per=2e-2, num_shots=20, windows=6),
            _counts("per-shot", 1, per=2e-2, num_shots=20, windows=6),
        )


class TestDecoderImplWiring:
    def test_invalid_decoder_impl_rejected(self):
        with pytest.raises(ValueError):
            BatchedLerExperiment(
                5e-3, num_shots=2, decoder_impl="quantum"
            )

    def test_batched_default_has_no_per_shot_list(self):
        experiment = BatchedLerExperiment(5e-3, num_shots=4, seed=0)
        assert experiment.decoder_impl == "lut"
        assert experiment.decoders is None
        assert experiment.decoder is not None

    def test_legacy_names_resolve_with_deprecation(self):
        with pytest.warns(DeprecationWarning):
            experiment = BatchedLerExperiment(
                5e-3, num_shots=2, seed=0, decoder_impl="batched"
            )
        assert experiment.decoder_impl == "lut"

    def test_lut_built_once_per_process_not_per_shot(self):
        """O(shots) brute-force builds collapse to O(1) cached ones."""
        clear_lut_cache()
        with telemetry.enabled() as collector:
            BatchedLerExperiment(5e-3, num_shots=50, seed=0)
        counters = collector.counters[("decoder.batched", "lut_cache")]
        assert counters["misses"] == 2  # one build per check species
        with telemetry.enabled() as collector:
            BatchedLerExperiment(5e-3, num_shots=50, seed=1)
        counters = collector.counters[("decoder.batched", "lut_cache")]
        assert counters == {"hits": 2}

    def test_batched_run_emits_batch_decode_spans(self):
        with telemetry.enabled() as collector:
            BatchedLerExperiment(
                5e-3, num_shots=3, windows=4, seed=9
            ).run_counts()
        key = (
            "decoder.batched",
            "BatchedWindowedLutDecoder.decode_window",
        )
        assert collector.span_totals[key][0] == 4
        counters = collector.counters[
            ("decoder.batched", "BatchedWindowedLutDecoder")
        ]
        assert counters["batch_decisions"] == 5  # init + 4 windows
        assert counters["shots"] == 15
