"""Verification of the ninja-star logical operations (paper section 5.1).

These are the paper's E1-E4 experiments as tests: the exact logical
state listings (5.1/5.2), the logical gate algebra, and the CNOT/CZ
truth tables (Tables 5.5/5.6), all simulated on the state-vector core
through the full control stack.
"""

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.codes.surface17 import (
    LogicalState,
    NinjaStarLayer,
    Rotation,
)
from repro.paulis import PauliString
from repro.qpdo import PauliFrameLayer, StabilizerCore, StateVectorCore


def make_stack(seed=1, logical_qubits=1, pauli_frame=False, core_cls=None):
    core_cls = core_cls or StateVectorCore
    core = core_cls(seed=seed)
    lower = PauliFrameLayer(core) if pauli_frame else core
    layer = NinjaStarLayer(lower)
    layer.createqubit(logical_qubits)
    return core, layer


def run_ops(layer, *ops):
    circuit = Circuit()
    handles = []
    for name, *qubits in ops:
        handles.append(circuit.add(name, *qubits))
    result = layer.run(circuit)
    return result, handles


class TestInitialization:
    def test_listing_5_1_logical_zero_state(self):
        """|0>_L: 16 equal-amplitude even-parity terms."""
        _core, layer = make_stack(seed=2016)
        run_ops(layer, ("prep_z", 0))
        state = layer.data_quantum_state(0)
        terms = state.nonzero_terms()
        assert len(terms) == 16
        for index, amplitude in terms:
            assert abs(amplitude) == pytest.approx(0.25)
            assert bin(index).count("1") % 2 == 0
        assert layer.logical_qubits[0].state is LogicalState.ZERO

    def test_listing_5_2_logical_one_state(self):
        """X_L |0>_L: 16 equal-amplitude odd-parity terms."""
        _core, layer = make_stack(seed=7)
        run_ops(layer, ("prep_z", 0), ("x", 0))
        state = layer.data_quantum_state(0)
        terms = state.nonzero_terms()
        assert len(terms) == 16
        for index, amplitude in terms:
            assert abs(amplitude) == pytest.approx(0.25)
            assert bin(index).count("1") % 2 == 1

    def test_repeated_initialization_is_deterministic(self):
        """Section 5.1.4 repeats initialization 100x; we sample 10."""
        for seed in range(10):
            _core, layer = make_stack(seed=seed)
            result, (_, measure) = run_ops(
                layer, ("prep_z", 0), ("measure", 0)
            )
            assert result.result_of(measure) == 0


class TestPauliGateAlgebra:
    def test_zl_fixes_zero(self):
        """Z_L |0>_L = |0>_L exactly (no phase)."""
        core, layer = make_stack(seed=3)
        run_ops(layer, ("prep_z", 0))
        reference = core.getquantumstate()
        run_ops(layer, ("z", 0))
        after = core.getquantumstate()
        assert np.allclose(after.amplitudes, reference.amplitudes)

    def test_zl_negates_one(self):
        """Z_L |1>_L = -|1>_L."""
        core, layer = make_stack(seed=3)
        run_ops(layer, ("prep_z", 0), ("x", 0))
        reference = core.getquantumstate()
        run_ops(layer, ("z", 0))
        after = core.getquantumstate()
        assert np.allclose(after.amplitudes, -reference.amplitudes)

    def test_xl_measurement(self):
        _core, layer = make_stack(seed=5)
        result, handles = run_ops(
            layer, ("prep_z", 0), ("x", 0), ("measure", 0)
        )
        assert result.result_of(handles[-1]) == 1


class TestHadamard:
    def test_hl_rotates_lattice(self):
        _core, layer = make_stack(seed=4)
        run_ops(layer, ("prep_z", 0), ("h", 0))
        assert layer.logical_qubits[0].rotation is Rotation.ROTATED

    def test_hl_zero_gives_plus(self):
        """X_L (H_L |0>_L) = H_L |0>_L (i.e. the state is |+>_L)."""
        core, layer = make_stack(seed=4)
        run_ops(layer, ("prep_z", 0), ("h", 0))
        reference = core.getquantumstate()
        run_ops(layer, ("x", 0))
        after = core.getquantumstate()
        assert after.equal_up_to_global_phase(reference)
        phase = after.global_phase_relative_to(reference)
        assert phase == pytest.approx(1.0)

    def test_zl_plus_gives_minus(self):
        """Z_L |+>_L must be orthogonal to |+>_L."""
        core, layer = make_stack(seed=4)
        run_ops(layer, ("prep_z", 0), ("h", 0))
        reference = core.getquantumstate().amplitudes
        run_ops(layer, ("z", 0))
        after = core.getquantumstate().amplitudes
        assert abs(np.vdot(reference, after)) == pytest.approx(0.0, abs=1e-9)

    def test_double_hadamard_is_identity(self):
        _core, layer = make_stack(seed=4)
        result, handles = run_ops(
            layer,
            ("prep_z", 0),
            ("x", 0),
            ("h", 0),
            ("h", 0),
            ("measure", 0),
        )
        assert result.result_of(handles[-1]) == 1
        assert layer.logical_qubits[0].rotation is Rotation.NORMAL


class TestCnotTruthTable:
    """Table 5.5 over all four computational basis inputs."""

    @pytest.mark.parametrize(
        "control_bit,target_bit",
        [(0, 0), (1, 0), (0, 1), (1, 1)],
    )
    def test_row(self, control_bit, target_bit):
        _core, layer = make_stack(
            seed=40 + control_bit * 2 + target_bit, logical_qubits=2
        )
        ops = [("prep_z", 0), ("prep_z", 1)]
        if control_bit:
            ops.append(("x", 0))
        if target_bit:
            ops.append(("x", 1))
        ops.append(("cnot", 0, 1))
        ops.extend([("measure", 0), ("measure", 1)])
        result, handles = run_ops(layer, *ops)
        assert result.result_of(handles[-2]) == control_bit
        assert result.result_of(handles[-1]) == control_bit ^ target_bit

    def test_rotated_orientation_bell_pair(self):
        """CNOT between differently-oriented lattices (rotated pairing)."""
        _core, layer = make_stack(seed=77, logical_qubits=2)
        run_ops(layer, ("prep_z", 0), ("prep_z", 1), ("h", 0))
        assert (
            layer.logical_qubits[0].rotation
            is not layer.logical_qubits[1].rotation
        )
        result, handles = run_ops(
            layer, ("cnot", 0, 1), ("measure", 0), ("measure", 1)
        )
        assert result.result_of(handles[-2]) == result.result_of(
            handles[-1]
        )


class TestCzTruthTable:
    """Table 5.6: CZ_L phases on all four basis inputs."""

    @pytest.mark.parametrize(
        "control_bit,target_bit,expected_phase",
        [(0, 0, 1.0), (1, 0, 1.0), (0, 1, 1.0), (1, 1, -1.0)],
    )
    def test_row(self, control_bit, target_bit, expected_phase):
        core, layer = make_stack(
            seed=60 + control_bit * 2 + target_bit, logical_qubits=2
        )
        ops = [("prep_z", 0), ("prep_z", 1)]
        if control_bit:
            ops.append(("x", 0))
        if target_bit:
            ops.append(("x", 1))
        run_ops(layer, *ops)
        reference = core.getquantumstate()
        run_ops(layer, ("cz", 0, 1))
        after = core.getquantumstate()
        assert after.equal_up_to_global_phase(reference)
        phase = after.global_phase_relative_to(reference)
        assert phase == pytest.approx(expected_phase)


class TestStabilizerInvariants:
    """After any logical operation the (rotated) stabilizers hold."""

    def test_stabilizers_after_gate_sequence(self):
        core, layer = make_stack(
            seed=9, core_cls=StabilizerCore, pauli_frame=False
        )
        run_ops(layer, ("prep_z", 0), ("x", 0), ("z", 0))
        sim = core.simulator
        data = layer.logical_qubits[0].data_qubits
        from repro.codes.surface17 import ALL_PLAQUETTES

        for plaquette in ALL_PLAQUETTES:
            support = [data[q] for q in plaquette.data_qubits]
            if plaquette.basis == "x":
                stabilizer = PauliString.from_support(
                    sim.num_qubits, x_support=support
                )
            else:
                stabilizer = PauliString.from_support(
                    sim.num_qubits, z_support=support
                )
            assert sim.expectation(stabilizer) == 1

    def test_logical_z_eigenvalue_flips_with_xl(self):
        core, layer = make_stack(seed=9, core_cls=StabilizerCore)
        run_ops(layer, ("prep_z", 0))
        sim = core.simulator
        # Data qubits are physical 1..9 (shared ancilla is physical 0).
        data = layer.logical_qubits[0].data_qubits
        z_logical = PauliString.from_support(
            sim.num_qubits, z_support=[data[0], data[4], data[8]]
        )
        assert sim.expectation(z_logical) == 1
        run_ops(layer, ("x", 0))
        assert sim.expectation(z_logical) == -1


class TestMeasurementPostProcessing:
    def test_dance_mode_after_measurement(self):
        _core, layer = make_stack(seed=10, core_cls=StabilizerCore)
        result, handles = run_ops(
            layer, ("prep_z", 0), ("measure", 0)
        )
        qubit = layer.logical_qubits[0]
        from repro.codes.surface17 import DanceMode

        assert qubit.dance_mode is DanceMode.Z_ONLY
        assert qubit.state is LogicalState.ZERO

    def test_unsupported_logical_gate_rejected(self):
        _core, layer = make_stack(seed=1)
        circuit = Circuit()
        circuit.add("t", 0)
        with pytest.raises(ValueError):
            layer.add(circuit)

    def test_logical_state_tracking_through_cnot(self):
        _core, layer = make_stack(
            seed=11, logical_qubits=2, core_cls=StabilizerCore
        )
        run_ops(layer, ("prep_z", 0), ("prep_z", 1), ("x", 0))
        run_ops(layer, ("cnot", 0, 1))
        assert layer.logical_qubits[1].state is LogicalState.ONE
