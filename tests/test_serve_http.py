"""Live-server tests of the ``repro serve`` HTTP endpoints.

Each test boots a real :class:`ServeApp` on an ephemeral localhost
port inside its own event loop, talks to it with a raw asyncio HTTP
client (the service has no client library on purpose — the protocol
is plain enough to speak by hand), and shuts it down cleanly.
"""

import asyncio
import json

import pytest

from repro.experiments.schemas import REPORT_SCHEMAS
from repro.serve import ServeApp, ServeConfig
from repro.serve.app import _http_request

jsonschema = pytest.importorskip("jsonschema")

#: A ler job small enough to finish in well under a second.
TINY_LER = {
    "job_kind": "ler",
    "params": {
        "physical_error_rate": 0.002,
        "shots": 4,
        "windows": 3,
        "shard_shots": 2,
        "seed": 11,
    },
}

TINY_DECODE = {
    "job_kind": "decode",
    "params": {
        "x_rounds": [[[0, 0, 0, 0]] * 3] * 2,
        "z_rounds": [[[0, 1, 0, 0]] * 3] * 2,
    },
}


def with_server(coro_factory, tmp_path, **overrides):
    """Run ``coro_factory(app, host, port)`` against a live server."""

    async def runner():
        config = ServeConfig(
            port=0,
            workers=overrides.pop("workers", 1),
            spool=str(tmp_path / "spool"),
            **overrides,
        )
        app = ServeApp(config)
        server = await app.start()
        host, port = server.sockets[0].getsockname()[:2]
        try:
            return await coro_factory(app, host, port)
        finally:
            app.request_stop()
            await app.run_until_stopped(server)

    return asyncio.run(runner())


async def poll_until_terminal(host, port, job_id, timeout=60.0):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while loop.time() < deadline:
        _, doc = await _http_request(
            host, port, "GET", f"/v1/jobs/{job_id}", None
        )
        if doc["state"] in ("done", "failed", "cancelled"):
            return doc
        await asyncio.sleep(0.02)
    raise TimeoutError(f"job {job_id} never settled")


def test_health_endpoint(tmp_path):
    async def scenario(app, host, port):
        status, doc = await _http_request(
            host, port, "GET", "/v1/health", None
        )
        assert status == 200
        jsonschema.validate(doc, REPORT_SCHEMAS["serve_health"])
        assert doc["status"] == "ok"
        assert doc["jobs_total"] == 0
        return doc

    with_server(scenario, tmp_path)


def test_ler_job_end_to_end(tmp_path):
    async def scenario(app, host, port):
        status, submitted = await _http_request(
            host, port, "POST", "/v1/jobs",
            {"job_id": "e2e", **TINY_LER},
        )
        assert status == 200
        jsonschema.validate(submitted, REPORT_SCHEMAS["job_status"])
        assert submitted["state"] == "pending"
        assert submitted["seed"] == 11  # explicit params.seed wins

        final = await poll_until_terminal(host, port, "e2e")
        assert final["state"] == "done"

        status, result = await _http_request(
            host, port, "GET", "/v1/jobs/e2e/result", None
        )
        assert status == 200
        jsonschema.validate(result, REPORT_SCHEMAS["job_result"])
        inner = result["result"]["report"]
        jsonschema.validate(inner, REPORT_SCHEMAS["ler_report"])
        assert inner["mode"] == "parallel"
        assert len(inner["arms"]) == 2

    with_server(scenario, tmp_path)


def test_decode_job_end_to_end(tmp_path):
    async def scenario(app, host, port):
        await _http_request(
            host, port, "POST", "/v1/jobs",
            {"job_id": "dec", **TINY_DECODE},
        )
        final = await poll_until_terminal(host, port, "dec")
        assert final["state"] == "done"
        _, result = await _http_request(
            host, port, "GET", "/v1/jobs/dec/result", None
        )
        decode = result["result"]["decode"]
        assert decode["shots"] == 2
        assert decode["rounds"] == 3
        assert len(decode["has_corrections"]) == 2

    with_server(scenario, tmp_path)


def test_derived_seed_when_params_omit_one(tmp_path):
    async def scenario(app, host, port):
        body = {
            "job_id": "noseed",
            "job_kind": "ler",
            "params": {
                "physical_error_rate": 0.002,
                "shots": 2,
                "windows": 2,
                "shard_shots": 2,
            },
        }
        _, doc = await _http_request(
            host, port, "POST", "/v1/jobs", body
        )
        from repro.serve import derive_job_seed

        assert doc["seed"] == derive_job_seed("noseed")
        await poll_until_terminal(host, port, "noseed")

    with_server(scenario, tmp_path)


def test_job_list_orders_by_submission(tmp_path):
    async def scenario(app, host, port):
        for job_id in ("a", "b"):
            await _http_request(
                host, port, "POST", "/v1/jobs",
                {"job_id": job_id, **TINY_DECODE},
            )
        status, listing = await _http_request(
            host, port, "GET", "/v1/jobs", None
        )
        assert status == 200
        jsonschema.validate(listing, REPORT_SCHEMAS["job_list"])
        assert [j["job_id"] for j in listing["jobs"]] == ["a", "b"]
        for job_id in ("a", "b"):
            await poll_until_terminal(host, port, job_id)

    with_server(scenario, tmp_path)


def test_cancel_pending_job(tmp_path):
    async def scenario(app, host, port):
        # Don't let the scheduler grab it first: stop it by flooding
        # the single slot with an earlier job, then cancel the second.
        await _http_request(
            host, port, "POST", "/v1/jobs",
            {"job_id": "first", **TINY_LER},
        )
        await _http_request(
            host, port, "POST", "/v1/jobs",
            {"job_id": "victim", "priority": -1, **TINY_DECODE},
        )
        status, doc = await _http_request(
            host, port, "POST", "/v1/jobs/victim/cancel", None
        )
        if status == 200:
            assert doc["state"] in ("cancelled", "running")
        final = await poll_until_terminal(host, port, "victim")
        await poll_until_terminal(host, port, "first")
        assert final["state"] in ("cancelled", "done")

    with_server(scenario, tmp_path)


def test_error_documents(tmp_path):
    async def scenario(app, host, port):
        cases = [
            # (method, path, body, expected status, expected error)
            ("GET", "/v1/jobs/ghost", None, 404, "unknown_job"),
            ("GET", "/v1/jobs/ghost/result", None, 404, "unknown_job"),
            ("GET", "/v1/nothing", None, 404, "unknown_path"),
            ("POST", "/v1/jobs", None, 400, "bad_json"),
            (
                "POST", "/v1/jobs",
                {"job_kind": "mystery", "params": {}},
                400, "bad_document",
            ),
            (
                "POST", "/v1/jobs",
                {"job_kind": "ler", "params": {}},
                400, "bad_params",
            ),
        ]
        for method, path, body, expected_status, expected_error in cases:
            status, doc = await _http_request(
                host, port, method, path, body
            )
            assert status == expected_status, (path, doc)
            jsonschema.validate(doc, REPORT_SCHEMAS["serve_error"])
            assert doc["error"] == expected_error
        # None of the rejected submissions ever entered the queue.
        _, listing = await _http_request(
            host, port, "GET", "/v1/jobs", None
        )
        assert listing["jobs"] == []

    with_server(scenario, tmp_path)


def test_result_of_unfinished_job_is_conflict(tmp_path):
    async def scenario(app, host, port):
        await _http_request(
            host, port, "POST", "/v1/jobs",
            {"job_id": "slow", **TINY_LER},
        )
        status, doc = await _http_request(
            host, port, "GET", "/v1/jobs/slow/result", None
        )
        if status != 200:  # may legitimately already be done
            assert status == 409
            assert doc["error"] == "not_done"
        await poll_until_terminal(host, port, "slow")

    with_server(scenario, tmp_path)


def test_duplicate_job_id_is_conflict(tmp_path):
    async def scenario(app, host, port):
        await _http_request(
            host, port, "POST", "/v1/jobs",
            {"job_id": "dup", **TINY_DECODE},
        )
        status, doc = await _http_request(
            host, port, "POST", "/v1/jobs",
            {"job_id": "dup", **TINY_DECODE},
        )
        assert status == 409
        assert doc["error"] == "duplicate_job"
        await poll_until_terminal(host, port, "dup")

    with_server(scenario, tmp_path)


def test_malformed_request_line(tmp_path):
    async def scenario(app, host, port):
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(b"NONSENSE\r\n\r\n")
        await writer.drain()
        raw = await reader.read()
        writer.close()
        await writer.wait_closed()
        assert b"400" in raw.split(b"\r\n", 1)[0]
        assert b"bad_request" in raw

    with_server(scenario, tmp_path)


def test_events_stream_follows_job_to_completion(tmp_path):
    async def scenario(app, host, port):
        await _http_request(
            host, port, "POST", "/v1/jobs",
            {"job_id": "traced", **TINY_LER},
        )
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(
            (
                f"GET /v1/jobs/traced/events HTTP/1.1\r\n"
                f"Host: {host}\r\nConnection: close\r\n\r\n"
            ).encode()
        )
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout=60)
        writer.close()
        await writer.wait_closed()
        header_blob, _, body_blob = raw.partition(b"\r\n\r\n")
        assert b"200" in header_blob.split(b"\r\n", 1)[0]
        assert b"application/x-ndjson" in header_blob
        lines = [
            json.loads(line)
            for line in body_blob.decode().splitlines()
            if line.strip()
        ]
        names = {
            (r.get("category"), r.get("name"))
            for r in lines
            if r.get("type") == "event"
        }
        assert ("serve.job", "started") in names
        # The final flush precedes stream truncation: the terminal
        # lifecycle line is always delivered.
        assert ("serve.job", "finished") in names
        # With job_concurrency == 1 the full shard telemetry rides
        # the same stream.
        assert ("parallel", "shard_commit") in names
        final = await poll_until_terminal(host, port, "traced")
        assert final["state"] == "done"

    with_server(scenario, tmp_path)


def test_events_stream_unknown_job_404(tmp_path):
    async def scenario(app, host, port):
        status, doc = await _http_request(
            host, port, "GET", "/v1/jobs/ghost/events", None
        )
        assert status == 404
        assert doc["error"] == "unknown_job"

    with_server(scenario, tmp_path)


def test_shutdown_endpoint_stops_server(tmp_path):
    async def scenario(app, host, port):
        status, doc = await _http_request(
            host, port, "POST", "/v1/shutdown", None
        )
        assert status == 200
        assert app._stopping

    with_server(scenario, tmp_path)


def test_restart_preserves_done_results(tmp_path):
    """A finished job's result survives a full server restart."""

    async def first_life(app, host, port):
        await _http_request(
            host, port, "POST", "/v1/jobs",
            {"job_id": "keeper", **TINY_LER},
        )
        await poll_until_terminal(host, port, "keeper")
        _, result = await _http_request(
            host, port, "GET", "/v1/jobs/keeper/result", None
        )
        return result

    async def second_life(app, host, port):
        _, result = await _http_request(
            host, port, "GET", "/v1/jobs/keeper/result", None
        )
        return result

    before = with_server(first_life, tmp_path)
    after = with_server(second_life, tmp_path)
    assert before == after

    with_server(scenario_noop, tmp_path)


async def scenario_noop(app, host, port):
    # Third boot over the same spool: recovery must stay idempotent.
    assert app.queue.get("keeper").state == "done"
