"""E3 -- Table 5.5: the transversal CNOT_L truth table.

Regenerates the table row for row: initial state, expected state after
CNOT_L (qubit 0 control, qubit 1 target), simulated state.
"""

from repro.circuits import Circuit
from repro.codes.surface17 import NinjaStarLayer
from repro.qpdo import StateVectorCore


def _row(control_bit, target_bit, seed):
    core = StateVectorCore(seed=seed)
    layer = NinjaStarLayer(core)
    layer.createqubit(2)
    circuit = Circuit()
    circuit.add("prep_z", 0)
    circuit.add("prep_z", 1)
    if control_bit:
        circuit.add("x", 0)
    if target_bit:
        circuit.add("x", 1)
    circuit.add("cnot", 0, 1)
    m0 = circuit.add("measure", 0)
    m1 = circuit.add("measure", 1)
    result = layer.run(circuit)
    return result.result_of(m0), result.result_of(m1)


def _table():
    rows = []
    for control_bit, target_bit in [(0, 0), (1, 0), (0, 1), (1, 1)]:
        observed = _row(
            control_bit, target_bit, seed=200 + control_bit * 2 + target_bit
        )
        expected = (control_bit, control_bit ^ target_bit)
        rows.append((control_bit, target_bit, expected, observed))
    return rows


def test_bench_table_5_5_cnot_truth_table(benchmark):
    rows = benchmark.pedantic(_table, rounds=1, iterations=1)
    print("\n[E3] Table 5.5 -- CNOT_L truth table:")
    print("  initial |c t>_L   expected   simulated")
    for control_bit, target_bit, expected, observed in rows:
        print(
            f"  |{control_bit}{target_bit}>_L          "
            f"|{expected[0]}{expected[1]}>_L      "
            f"|{observed[0]}{observed[1]}>_L"
        )
    assert all(expected == observed for _c, _t, expected, observed in rows)
