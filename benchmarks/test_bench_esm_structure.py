"""E13 -- Table 5.8: the ESM circuit structure audit.

Regenerates the table: 48 gates over 8 time slots, with the exact
per-slot contents (ancilla resets, Hadamard brackets, the four
interleaved CNOT slots, the simultaneous measurement).
"""

from collections import Counter

from repro.codes.surface17 import parallel_esm


def _audit():
    esm = parallel_esm(list(range(17)))
    rows = []
    for index, slot in enumerate(esm.circuit, start=1):
        census = Counter(operation.name for operation in slot)
        rows.append((index, len(slot), dict(census)))
    return esm, rows


def test_bench_table_5_8_esm_structure(benchmark):
    esm, rows = benchmark.pedantic(_audit, rounds=1, iterations=1)
    print("\n[E13] Table 5.8 -- ESM circuit structure:")
    print("  slot  #ops  contents")
    for index, count, census in rows:
        body = ", ".join(f"{k} x{v}" for k, v in sorted(census.items()))
        print(f"  {index:4d}  {count:4d}  {body}")
    total_ops = sum(count for _i, count, _c in rows)
    print(f"  total: {total_ops} gates in {len(rows)} time slots")

    assert len(rows) == 8
    assert total_ops == 48
    assert rows[0][2] == {"prep_z": 4}
    assert rows[1][2] == {"prep_z": 4, "h": 4}
    for index in (2, 3, 4, 5):
        assert rows[index][2] == {"cnot": 6}
    assert rows[6][2] == {"h": 4}
    assert rows[7][2] == {"measure": 8}
    assert len(esm.x_measurements) == 4
    assert len(esm.z_measurements) == 4
