"""E16c -- phenomenological distance scaling (future work, ch. 6).

Complements the code-capacity and circuit-level scaling benches with
the standard phenomenological model (data + measurement errors,
space-time MWPM decoding): threshold ~3%, genuine distance scaling
below it.
"""

from repro.experiments.phenomenological import (
    format_phenomenological_table,
    run_phenomenological_scaling,
)


def test_bench_phenomenological_scaling(benchmark):
    results = benchmark.pedantic(
        lambda: run_phenomenological_scaling(
            distances=(3, 5),
            per_values=(0.01, 0.05),
            trials=400,
            seed=13,
        ),
        rounds=1,
        iterations=1,
    )
    print("\n[E16c] phenomenological scaling (p = q):")
    print(format_phenomenological_table(results))

    def ler(distance, index):
        return results[distance][index].logical_error_rate

    # Below the ~3% phenomenological threshold: d = 5 wins.
    assert ler(5, 0) <= ler(3, 0)
    # Far above it: the ordering flattens or inverts.
    assert ler(5, 1) > ler(3, 1) * 0.5
    # Monotone in noise for each distance.
    for distance in (3, 5):
        assert ler(distance, 1) > ler(distance, 0)
