"""E17 -- batched frame sampler vs per-shot tableau loop.

The acceptance bar for the batched sampler: on the Surface Code 17
ESM workload it must beat the per-shot tableau loop by at least 10x
at 10,000 shots.  Two measurements:

* raw shot sampling -- the noisy ESM circuit compiled once and
  sampled in bulk, against a fresh ``StabilizerCore`` +
  ``DepolarizingErrorLayer`` stack per shot,
* the full adaptive LER workload (decode + correct every window),
  where the decoder runs in Python per shot either way, so the
  speedup is smaller but still far above the bar.

Both baselines are timed over a small shot count and expressed as a
rate; the batched path runs the full 10,000 shots.
"""

import time

import numpy as np

from repro.circuits import Circuit
from repro.codes.surface17 import parallel_esm
from repro.experiments import BatchedLerExperiment, LerExperiment
from repro.qpdo import DepolarizingErrorLayer, StabilizerCore
from repro.sim import (
    BatchedFrameSampler,
    NoiseParameters,
    compile_frame_program,
)

#: Physical error rate of the workload (mid-sweep, Fig 5.11 range).
PER = 6e-3
#: Shots the batched sampler must handle (the acceptance criterion).
BATCH_SHOTS = 10_000
#: Shots used to time the per-shot loop baseline (rate extrapolates).
LOOP_SHOTS = 30
#: Required speedup of batched over loop (ISSUE acceptance bar).
REQUIRED_SPEEDUP = 10.0


def _esm_workload():
    """Prep + three noisy ESM rounds on the 17 SC17 qubits."""
    circuit = Circuit("sc17-esm")
    for qubit in range(9):
        circuit.add("prep_z", qubit)
    measurements = []
    for _ in range(3):
        esm = parallel_esm(list(range(17)))
        circuit.extend(esm.circuit)
        measurements.extend(esm.x_measurements + esm.z_measurements)
    return circuit, measurements


def test_bench_e17_raw_sampling_speedup(benchmark):
    circuit, measurements = _esm_workload()
    noise = NoiseParameters(PER, active_qubits=range(17))

    # Per-shot baseline: a fresh stack per shot, as the LER harness
    # does it, timed over LOOP_SHOTS shots.
    rng = np.random.default_rng(11)
    start = time.perf_counter()
    for _ in range(LOOP_SHOTS):
        stack = DepolarizingErrorLayer(
            StabilizerCore(rng=rng),
            probability=PER,
            rng=rng,
            active_qubits=range(17),
        )
        stack.createqubit(17)
        result = stack.run(circuit.copy(fresh_uids=False))
        [result.result_of(m) for m in measurements]
    loop_rate = LOOP_SHOTS / (time.perf_counter() - start)

    # Batched: compile once, sample BATCH_SHOTS in bulk.
    program = compile_frame_program(
        circuit, num_qubits=17, noise=noise, reference_seed=11
    )

    def sample():
        return BatchedFrameSampler(program, seed=12).sample(BATCH_SHOTS)

    elapsed = time.perf_counter()
    bits = benchmark.pedantic(sample, rounds=1, iterations=1)
    batched_rate = BATCH_SHOTS / (time.perf_counter() - elapsed)

    assert bits.shape == (BATCH_SHOTS, len(measurements))
    speedup = batched_rate / loop_rate
    print("\n[E17] SC17 ESM raw sampling, shots/second:")
    print(f"  per-shot tableau loop: {loop_rate:12.1f}")
    print(f"  batched frame sampler: {batched_rate:12.1f}")
    print(
        f"  speedup:               {speedup:12.1f}x "
        f"(bar {REQUIRED_SPEEDUP:.0f}x)"
    )
    assert speedup >= REQUIRED_SPEEDUP


def test_bench_e17_ler_workload_speedup(benchmark):
    # Loop baseline: the per-shot LER experiment, rate in windows/s.
    start = time.perf_counter()
    loop_result = LerExperiment(
        PER,
        use_pauli_frame=True,
        error_kind="x",
        max_logical_errors=3,
        seed=5,
    ).run()
    loop_rate = loop_result.windows / (time.perf_counter() - start)

    # Batched: BATCH_SHOTS lockstep shots, a few windows each.
    windows = 5

    def run_batched():
        return BatchedLerExperiment(
            PER,
            num_shots=BATCH_SHOTS,
            use_pauli_frame=True,
            error_kind="x",
            windows=windows,
            seed=6,
        ).run()

    elapsed = time.perf_counter()
    results = benchmark.pedantic(run_batched, rounds=1, iterations=1)
    batched_rate = (BATCH_SHOTS * windows) / (
        time.perf_counter() - elapsed
    )

    total_windows = sum(r.windows for r in results)
    assert total_windows == BATCH_SHOTS * windows
    speedup = batched_rate / loop_rate
    print("\n[E17] SC17 adaptive LER workload, windows/second:")
    print(f"  per-shot tableau loop: {loop_rate:12.1f}")
    print(f"  batched frame sampler: {batched_rate:12.1f}")
    print(
        f"  speedup:               {speedup:12.1f}x "
        f"(bar {REQUIRED_SPEEDUP:.0f}x)"
    )
    assert speedup >= REQUIRED_SPEEDUP
    # Sanity: the batched LER lands in the same regime as the loop.
    errors = sum(r.logical_errors for r in results)
    batched_ler = errors / total_windows
    assert 0.2 * loop_result.logical_error_rate <= batched_ler
    assert batched_ler <= 5.0 * max(loop_result.logical_error_rate, 1e-3)
