"""E11 -- Figs 5.25/5.26: gates and time slots saved by the frame.

During the LER runs the Pauli frame can only ever absorb the
correction gates (the ESM circuit contains no Pauli gates), so the
saved-slot fraction is bounded by 1/17 ~ 5.9% -- the paper's central
accounting argument for why the frame cannot move the LER.
"""


def test_bench_figs_5_25_5_26_savings(benchmark, ler_sweep_x):
    savings = benchmark.pedantic(
        ler_sweep_x.savings_series, rounds=1, iterations=1
    )
    print("\n[E11] Figs 5.25/5.26 -- savings by the Pauli frame:")
    print("  PER        saved gates %  saved slots %")
    for per, ops, slots in zip(
        ler_sweep_x.per_values(),
        savings["operations"],
        savings["slots"],
    ):
        print(
            f"  {per:9.2e}  {100 * ops:13.3f}  {100 * slots:13.3f}"
        )
    bound = 1.0 / 17.0
    print(f"  analytic slot-saving bound: {100 * bound:.2f}%")
    for ops, slots in zip(savings["operations"], savings["slots"]):
        assert 0.0 < slots <= bound + 1e-9
        assert 0.0 < ops < 0.05
    # Savings grow with PER (more corrections to absorb).
    assert savings["slots"] == sorted(savings["slots"])
