"""E10 -- Figs 5.21-5.24: t-test rho values per PER.

Regenerates the statistical-significance analysis: independent and
paired two-sided t-tests between the with/without-frame LER samples at
every PER.  The paper's conclusion -- "the difference ... is
considered to be not statistically significant" -- requires the rho
values to scatter without consistently dipping below 0.05.
"""

from repro.experiments.stats import mean_rho, significant_fraction


def test_bench_figs_5_21_to_5_24_ttests(benchmark, ler_sweep_x):
    rhos = benchmark.pedantic(
        lambda: (
            ler_sweep_x.rho_series(paired=False),
            ler_sweep_x.rho_series(paired=True),
        ),
        rounds=1,
        iterations=1,
    )
    independent, paired = rhos
    print("\n[E10] Figs 5.21-5.24 -- t-test rho values:")
    print("  PER        rho(independent)  rho(paired)")
    for per, ind, par in zip(
        ler_sweep_x.per_values(), independent, paired
    ):
        print(f"  {per:9.2e}  {ind:16.3f}  {par:11.3f}")
    comparisons = [p.comparison for p in ler_sweep_x.points]
    mean = mean_rho(comparisons)
    fraction = significant_fraction(comparisons)
    print(f"  mean rho (independent): {mean:.3f}")
    print(f"  points with rho < 0.05: {100 * fraction:.0f}%")
    # No *consistent* significance: the majority of points must sit
    # above the 0.05 line (under H0 ~5% dip below by chance).
    assert fraction <= 0.5
    for rho in independent:
        assert 0.0 <= rho <= 1.0
