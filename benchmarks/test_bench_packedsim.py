"""E22 -- bit-packed frame-differential engine vs the batched sampler.

The acceptance bar for the packed engine: on the full SC17 adaptive
LER workload at 100,000 lockstep shots, ``engine="packed-fast"`` must
beat ``framesim`` by at least ``REQUIRED_SPEEDUP``.  The CI gate is
4x (shared runners are noisy and slow); on a quiet local machine the
measured speedup is ~11x, which is the paper-facing E22 number.

Two measurements:

* raw shot sampling -- the compiled noisy ESM program sampled by the
  unpacked :class:`~repro.sim.framesim.BatchedFrameSampler` against
  the packed sampler in both RNG modes.  The exact mode must return
  bit-identical samples (conformance is free here, so it is asserted
  in passing); the fast mode carries the speedup,
* the full adaptive LER workload (sample + majority vote + LUT decode
  + frame feedback every window) through
  :class:`~repro.experiments.ler.BatchedLerExperiment`, where the
  packed engines keep syndromes as ``uint64`` words end to end.

Environment knobs (CI uses the defaults):

* ``REPRO_E22_SHOTS`` -- lockstep shots (default 100,000),
* ``REPRO_E22_MIN_SPEEDUP`` -- the gate (default 4.0).
"""

import os
import time

import numpy as np

from repro.circuits import Circuit
from repro.codes.surface17 import parallel_esm
from repro.experiments import BatchedLerExperiment
from repro.sim import (
    BatchedFrameSampler,
    NoiseParameters,
    compile_frame_program,
)
from repro.sim.packedsim import PackedFrameSampler

#: Physical error rate of the workload (mid-sweep, Fig 5.11 range).
PER = 6e-3
#: Lockstep shots of the packed acceptance run.
BATCH_SHOTS = int(os.environ.get("REPRO_E22_SHOTS", 100_000))
#: Required speedup of packed-fast over framesim (CI gate; the local
#: target in ISSUE/EXPERIMENTS is 10x and is met with margin).
REQUIRED_SPEEDUP = float(os.environ.get("REPRO_E22_MIN_SPEEDUP", 4.0))
#: Windows per shot of the LER workload.
WINDOWS = 3


def _esm_program():
    """Prep + three noisy ESM rounds, compiled once."""
    circuit = Circuit("sc17-esm")
    for qubit in range(9):
        circuit.add("prep_z", qubit)
    for _ in range(3):
        circuit.extend(parallel_esm(list(range(17))).circuit)
    return compile_frame_program(
        circuit,
        num_qubits=17,
        noise=NoiseParameters(PER, active_qubits=range(17)),
        reference_seed=11,
    )


def _rate(fn):
    start = time.perf_counter()
    out = fn()
    return out, BATCH_SHOTS / (time.perf_counter() - start)


def test_bench_e22_raw_sampling_speedup(benchmark):
    program = _esm_program()

    unpacked, unpacked_rate = _rate(
        lambda: BatchedFrameSampler(program, seed=12).sample(BATCH_SHOTS)
    )
    exact, exact_rate = _rate(
        lambda: PackedFrameSampler(
            program, seed=12, rng_mode="exact"
        ).sample(BATCH_SHOTS)
    )
    # Conformance, asserted in passing: exact mode is bit-identical.
    assert np.array_equal(unpacked, exact)

    def sample_fast():
        return PackedFrameSampler(
            program, seed=12, rng_mode="fast"
        ).sample(BATCH_SHOTS)

    start = time.perf_counter()
    fast = benchmark.pedantic(sample_fast, rounds=1, iterations=1)
    fast_rate = BATCH_SHOTS / (time.perf_counter() - start)

    assert fast.shape == unpacked.shape
    speedup = fast_rate / unpacked_rate
    print("\n[E22] SC17 ESM raw sampling, shots/second:")
    print(f"  batched frame sampler: {unpacked_rate:12.1f}")
    print(f"  packed (exact rng):    {exact_rate:12.1f}")
    print(f"  packed (fast rng):     {fast_rate:12.1f}")
    print(
        f"  fast speedup:          {speedup:12.1f}x "
        f"(gate {REQUIRED_SPEEDUP:.0f}x)"
    )
    assert speedup >= REQUIRED_SPEEDUP


def test_bench_e22_ler_workload_speedup(benchmark):
    def run(engine):
        return BatchedLerExperiment(
            PER,
            num_shots=BATCH_SHOTS,
            use_pauli_frame=True,
            error_kind="x",
            windows=WINDOWS,
            seed=6,
            engine=engine,
        ).run_counts()

    reference, reference_rate = _rate(lambda: run("framesim"))
    exact, exact_rate = _rate(lambda: run("packed"))
    # Conformance, asserted in passing: the exact engine's counts are
    # bit-identical to framesim at full benchmark scale.
    assert np.array_equal(
        reference.logical_errors, exact.logical_errors
    )
    assert np.array_equal(reference.clean_windows, exact.clean_windows)

    start = time.perf_counter()
    fast = benchmark.pedantic(
        lambda: run("packed-fast"), rounds=1, iterations=1
    )
    fast_rate = BATCH_SHOTS / (time.perf_counter() - start)

    speedup = fast_rate / reference_rate
    print("\n[E22] SC17 adaptive LER workload, shots/second:")
    print(f"  framesim engine:       {reference_rate:12.1f}")
    print(f"  packed (exact rng):    {exact_rate:12.1f}")
    print(f"  packed-fast engine:    {fast_rate:12.1f}")
    print(
        f"  fast speedup:          {speedup:12.1f}x "
        f"(gate {REQUIRED_SPEEDUP:.0f}x)"
    )
    assert speedup >= REQUIRED_SPEEDUP

    # Sanity: all three engines land in the same LER regime.
    ler_reference = reference.logical_errors.sum() / (
        BATCH_SHOTS * WINDOWS
    )
    ler_fast = fast.logical_errors.sum() / (BATCH_SHOTS * WINDOWS)
    assert 0.5 * ler_reference <= ler_fast <= 2.0 * ler_reference
