"""E18 -- worker scaling of the shot-sharded parallel sweep runner.

Acceptance bar: on a 10,000-shot SC17 sweep point the 4-worker runner
must (a) reproduce the single-process aggregate LER bit-identically
and (b) run at least 2x faster than ``workers=1``.  Equality is
asserted unconditionally; the speedup bar is only enforced on hosts
with >= 4 CPU cores (a single-core container cannot exhibit it) and at
the full acceptance shot count.

Scale note: the default run uses a scaled-down shot count so the suite
stays fast on CI hardware.  Reproduce the acceptance criterion
verbatim with::

    REPRO_BENCH_PARALLEL_SHOTS=10000 \\
    PYTHONPATH=src python -m pytest \\
        benchmarks/test_bench_parallel_scaling.py -s
"""

import os
import time

from repro.experiments.parallel import ParallelConfig, run_parallel_sweep

#: Sweep point of the workload (mid-sweep, Fig 5.11 range).
PER = 6e-3
#: Shots per arm; override with REPRO_BENCH_PARALLEL_SHOTS=10000 for
#: the full acceptance run.
SHOTS = int(os.environ.get("REPRO_BENCH_PARALLEL_SHOTS", "400"))
#: Shots per shard (the unit of parallel work).
SHARD_SHOTS = int(
    os.environ.get("REPRO_BENCH_PARALLEL_SHARD_SHOTS", "100")
)
#: Decode windows per shot.
WINDOWS = int(os.environ.get("REPRO_BENCH_PARALLEL_WINDOWS", "10"))
#: Worker count of the parallel arm (the acceptance criterion's 4).
WORKERS = int(os.environ.get("REPRO_BENCH_PARALLEL_WORKERS", "4"))
#: Required speedup at WORKERS workers (ISSUE acceptance bar).
REQUIRED_SPEEDUP = 2.0
#: Shot count at which the speedup bar is binding.
ACCEPTANCE_SHOTS = 10_000

SEED = 2017


def _run(workers: int):
    start = time.perf_counter()
    report = run_parallel_sweep(
        [PER],
        shots=SHOTS,
        windows=WINDOWS,
        seed=SEED,
        config=ParallelConfig(
            workers=workers, shard_shots=SHARD_SHOTS
        ),
    )
    return report, time.perf_counter() - start


def _records(report):
    return [
        record.to_json()
        for arm_key in sorted(report.arms)
        for record in report.arms[arm_key].committed
    ]


def test_bench_parallel_worker_scaling(benchmark):
    serial_report, serial_seconds = _run(workers=1)
    pooled_report, pooled_seconds = benchmark.pedantic(
        lambda: _run(workers=WORKERS), rounds=1, iterations=1
    )
    speedup = serial_seconds / max(pooled_seconds, 1e-9)

    print(
        f"\n[E18] parallel sweep scaling -- SC17 point at "
        f"PER={PER:.0e}, {SHOTS} shots x {WINDOWS} windows, "
        f"{SHARD_SHOTS}-shot shards:"
    )
    print(f"  workers=1: {serial_seconds:8.2f} s")
    print(f"  workers={WORKERS}: {pooled_seconds:8.2f} s")
    print(
        f"  speedup: {speedup:.2f}x "
        f"(host cores: {os.cpu_count()})"
    )

    # (a) Bit-identical aggregates, always.
    assert _records(serial_report) == _records(pooled_report)
    assert serial_report.sweep.series(False) == (
        pooled_report.sweep.series(False)
    )
    assert serial_report.sweep.series(True) == (
        pooled_report.sweep.series(True)
    )
    for arm_key in serial_report.arms:
        serial_arm = serial_report.arms[arm_key]
        pooled_arm = pooled_report.arms[arm_key]
        assert serial_arm.errors == pooled_arm.errors
        assert serial_arm.windows == pooled_arm.windows

    # (b) The >= 2x speedup bar, where the host can express it.
    cores = os.cpu_count() or 1
    if cores >= WORKERS and SHOTS >= ACCEPTANCE_SHOTS:
        assert speedup >= REQUIRED_SPEEDUP, (
            f"expected >= {REQUIRED_SPEEDUP}x at {WORKERS} workers, "
            f"got {speedup:.2f}x"
        )
    elif cores < WORKERS:
        print(
            f"  speedup bar skipped: {cores} core(s) < "
            f"{WORKERS} workers"
        )
    else:
        print(
            "  speedup bar skipped: scaled-down run "
            f"({SHOTS} < {ACCEPTANCE_SHOTS} shots); set "
            "REPRO_BENCH_PARALLEL_SHOTS=10000 to enforce"
        )
