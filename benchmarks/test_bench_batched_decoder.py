"""E21 -- array-native batched decoding vs the per-shot decoder loop.

PR 1's batched sampler left the LER experiment decode-bound: one
``WindowedLutDecoder`` per shot, each rebuilding the brute-force LUT,
then Python-loop decoding every window.  The batched decoding layer
(`repro.decoders.batched`) decodes all shots at once as numpy gathers
over process-cached dense tables.  Two acceptance bars:

* the full batched LER experiment at 1000 shots must run >= 3x faster
  with the array-native decoder than with the per-shot reference,
  while producing bit-identical ``BatchCounts``;
* LUT construction per experiment arm must be O(1) cached builds
  instead of O(shots) brute-force enumerations, with a warm
  (cache-hit) build amortizing far below a cold one.
"""

import time

import numpy as np

from repro import telemetry
from repro.codes.surface17 import X_CHECK_MATRIX, Z_CHECK_MATRIX
from repro.decoders import clear_lut_cache, dense_lut
from repro.experiments.ler import BatchedLerExperiment

#: Physical error rate of the workload (mid-sweep, Fig 5.11 range).
PER = 6e-3
#: Lockstep shots of the timed experiment (the acceptance criterion).
SHOTS = 1000
#: Windows per shot (small: the bar is per-window decode throughput).
WINDOWS = 5
#: Required wall-clock speedup of batched over per-shot decoding.
REQUIRED_SPEEDUP = 3.0
#: Cold/warm table-build pairs for the construction benchmark.
BUILD_ROUNDS = 200


def _run(decoder_impl):
    return BatchedLerExperiment(
        PER,
        num_shots=SHOTS,
        use_pauli_frame=True,
        error_kind="x",
        windows=WINDOWS,
        seed=6,
        decoder_impl=decoder_impl,
    ).run_counts()


def test_bench_e21_batched_decode_speedup(benchmark):
    # Warm the table cache so both arms measure decoding, not builds.
    dense_lut(X_CHECK_MATRIX)
    dense_lut(Z_CHECK_MATRIX)

    start = time.perf_counter()
    per_shot_counts = _run("per-shot")
    per_shot_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batched_counts = benchmark.pedantic(
        lambda: _run("batched"), rounds=1, iterations=1
    )
    batched_seconds = time.perf_counter() - start

    # The hard equivalence gate: same seeds -> bit-identical counts.
    assert np.array_equal(
        batched_counts.logical_errors, per_shot_counts.logical_errors
    )
    assert np.array_equal(
        batched_counts.clean_windows, per_shot_counts.clean_windows
    )
    assert np.array_equal(
        batched_counts.corrections_commanded,
        per_shot_counts.corrections_commanded,
    )

    speedup = per_shot_seconds / batched_seconds
    rate = SHOTS * WINDOWS / batched_seconds
    print(f"\n[E21] SC17 batched LER, {SHOTS} shots x {WINDOWS} windows:")
    print(f"  per-shot decoder loop: {per_shot_seconds:8.3f} s")
    print(f"  array-native batched:  {batched_seconds:8.3f} s "
          f"({rate:,.0f} windows/s)")
    print(f"  speedup:               {speedup:8.1f}x "
          f"(bar {REQUIRED_SPEEDUP:.0f}x)")
    assert speedup >= REQUIRED_SPEEDUP


def test_bench_e21_lut_cache_construction(benchmark):
    # Cold: every build re-runs the vectorized enumeration.
    start = time.perf_counter()
    for _ in range(BUILD_ROUNDS):
        clear_lut_cache()
        dense_lut(X_CHECK_MATRIX)
        dense_lut(Z_CHECK_MATRIX)
    cold_seconds = (time.perf_counter() - start) / BUILD_ROUNDS

    # Warm: every build is a digest lookup of the shared table.
    clear_lut_cache()
    dense_lut(X_CHECK_MATRIX)
    dense_lut(Z_CHECK_MATRIX)

    def warm_builds():
        for _ in range(BUILD_ROUNDS):
            dense_lut(X_CHECK_MATRIX)
            dense_lut(Z_CHECK_MATRIX)

    start = time.perf_counter()
    benchmark.pedantic(warm_builds, rounds=1, iterations=1)
    warm_seconds = (time.perf_counter() - start) / BUILD_ROUNDS

    # An experiment arm performs exactly one build per check species,
    # independent of the shot count: O(1), not O(shots).
    clear_lut_cache()
    with telemetry.enabled() as collector:
        BatchedLerExperiment(PER, num_shots=SHOTS, seed=0)
    counters = collector.counters[("decoder.batched", "lut_cache")]
    assert counters["misses"] == 2
    assert counters.get("hits", 0) == 0

    print(f"\n[E21] SC17 two-species LUT construction, per build pair:")
    print(f"  cold (enumeration):    {1e6 * cold_seconds:10.1f} us")
    print(f"  warm (cache hit):      {1e6 * warm_seconds:10.1f} us")
    print(f"  {SHOTS}-shot arm builds:   2 (one per species, O(1))")
    assert warm_seconds < cold_seconds
