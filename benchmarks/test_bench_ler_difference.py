"""E8 -- Figs 5.17/5.18: absolute LER difference vs sigma_max.

Regenerates the paper's difference analysis: per PER, the difference
``delta = LER(no PF) - LER(PF)`` (Eq. 5.2) plotted against the larger
of the two sample standard deviations (Eq. 5.3).  The paper observes
no consistent sign and |delta| mostly inside the +-sigma_max band.
"""


def test_bench_figs_5_17_5_18_delta_vs_sigma(benchmark, ler_sweep_x):
    deltas = benchmark.pedantic(
        ler_sweep_x.delta_series, rounds=1, iterations=1
    )
    sigmas = ler_sweep_x.sigma_series()
    print("\n[E8] Figs 5.17/5.18 -- LER difference vs sigma_max:")
    print("  PER        delta         sigma_max   inside band")
    inside = 0
    for per, delta, sigma in zip(
        ler_sweep_x.per_values(), deltas, sigmas
    ):
        ok = abs(delta) <= sigma
        inside += ok
        print(
            f"  {per:9.2e}  {delta:+11.4e}  {sigma:9.3e}  {ok}"
        )
    # The paper: "for nearly all p, delta can be found within the
    # standard deviation regions +-sigma_max".  With the scaled
    # statistics we require the weaker band of 3 sigma everywhere and
    # at least one point inside 1 sigma.
    assert all(
        abs(delta) <= 3 * max(sigma, 1e-4)
        for delta, sigma in zip(deltas, sigmas)
    )
    assert inside >= 1
