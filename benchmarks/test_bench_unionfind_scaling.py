"""E24 -- decoding past d = 3: union-find wall-clock scaling.

ROADMAP item 3 caps the scaling experiments at Surface-17-sized codes
because the dense LUT is ``O(2^checks)`` and per-shot Blossom matching
re-solves an all-pairs MWPM for every trial.  The array-native
union-find decoder (:mod:`repro.decoders.unionfind`) removes both
walls.  Two acceptance bars:

* **wall-clock**: batch union-find decoding of a d = 7
  phenomenological workload must beat the per-trial Blossom decoder
  by at least :data:`REQUIRED_SPEEDUP` — the gap is superlinear in
  distance, so d = 7 is already decisive;
* **reach**: a d = 15 phenomenological point (beyond any dense-LUT or
  practical per-shot-Blossom run) completes inside the bench budget
  and shows the sub-threshold ordering against d = 7.
"""

import time

import numpy as np

from repro.codes.rotated import RotatedSurfaceCode
from repro.decoders import boundary_qubits_for
from repro.decoders.spacetime import SpaceTimeMatchingDecoder
from repro.decoders.unionfind import SpaceTimeUnionFindDecoder
from repro.experiments.phenomenological import (
    PhenomenologicalSimulator,
    run_phenomenological_scaling,
)

#: Distance of the timed head-to-head (superlinear gap => decisive).
HEAD_TO_HEAD_DISTANCE = 7
#: Trials of the timed workload.
TRIALS = 60
#: Data/measurement error rate of the workload (sub-threshold).
ERROR_RATE = 0.015
#: Required wall-clock speedup of batch union-find over per-trial
#: Blossom at d = 7 (measured gap is ~10x or more; 2x is the gate).
REQUIRED_SPEEDUP = 2.0
#: The reach demonstration: distances no dense table can touch.
LARGE_DISTANCES = (7, 15)
LARGE_TRIALS = 120


def _histories(distance, trials, seed):
    """Sample one phenomenological workload as stacked histories."""
    simulator = PhenomenologicalSimulator(distance)
    rng = np.random.default_rng(seed)
    histories = []
    cumulatives = []
    for _ in range(trials):
        history, cumulative = simulator._sample_trial(
            ERROR_RATE, ERROR_RATE, rng, rounds=distance
        )
        histories.append(history)
        cumulatives.append(cumulative)
    return simulator, np.asarray(histories, dtype=bool), cumulatives


def test_bench_e24_unionfind_vs_blossom_wallclock(benchmark):
    code = RotatedSurfaceCode(HEAD_TO_HEAD_DISTANCE)
    boundary = boundary_qubits_for(code, "z")
    simulator, histories, cumulatives = _histories(
        HEAD_TO_HEAD_DISTANCE, TRIALS, seed=24
    )
    blossom = SpaceTimeMatchingDecoder(code.z_check_matrix, boundary)
    unionfind = SpaceTimeUnionFindDecoder(
        code.z_check_matrix, boundary
    )

    start = time.perf_counter()
    blossom_corrections = [
        blossom.decode_history(history) for history in histories
    ]
    blossom_seconds = time.perf_counter() - start

    start = time.perf_counter()
    uf_corrections = benchmark.pedantic(
        lambda: unionfind.decode_batch(histories),
        rounds=1,
        iterations=1,
    )
    unionfind_seconds = time.perf_counter() - start

    speedup = blossom_seconds / max(unionfind_seconds, 1e-9)
    print(
        f"\n[E24] d={HEAD_TO_HEAD_DISTANCE} x {TRIALS} trials: "
        f"per-trial Blossom {blossom_seconds:.2f}s, "
        f"batch union-find {unionfind_seconds:.2f}s "
        f"({speedup:.1f}x)"
    )
    assert speedup >= REQUIRED_SPEEDUP

    # Both decoders must be *sound* on every trial (silencing
    # corrections), and their logical verdicts must agree on the
    # overwhelming majority of sub-threshold trials.
    disagreements = 0
    for index in range(TRIALS):
        for correction in (
            blossom_corrections[index],
            uf_corrections[index],
        ):
            residual = cumulatives[index] ^ correction
            syndrome = (
                residual.astype(np.uint8) @ code.z_check_matrix.T
            ) % 2
            assert not syndrome.any()
        if simulator._is_logical(
            cumulatives[index], blossom_corrections[index]
        ) != simulator._is_logical(
            cumulatives[index], uf_corrections[index]
        ):
            disagreements += 1
    assert disagreements <= max(2, TRIALS // 10)


def test_bench_e24_unionfind_reaches_d15(benchmark):
    results = benchmark.pedantic(
        lambda: run_phenomenological_scaling(
            distances=LARGE_DISTANCES,
            per_values=(ERROR_RATE,),
            trials=LARGE_TRIALS,
            seed=15,
            decoder="unionfind",
        ),
        rounds=1,
        iterations=1,
    )
    print(f"\n[E24] union-find phenomenological reach, p={ERROR_RATE}:")
    lers = {}
    for distance in LARGE_DISTANCES:
        ler = results[distance][0].logical_error_rate
        lers[distance] = ler
        print(f"  d={distance}: LER {ler:.4f}")
    # Sub-threshold: growing the distance must not hurt.
    assert lers[15] <= lers[7] + 0.05
