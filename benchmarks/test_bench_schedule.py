"""E14 -- Fig. 3.3: the QEC schedules with and without a Pauli frame.

Regenerates the schedule comparison: the frame removes the decoder
wait and the correction slot from the window's critical path and
relaxes the decoder deadline -- the paper's surviving argument for
Pauli frames.
"""

from repro.experiments.schedule import (
    ScheduleParameters,
    compare_schedules,
)


def test_bench_fig_3_3_schedules(benchmark):
    params = ScheduleParameters(
        esm_duration=8.0,
        rounds_per_window=2,
        decode_duration=10.0,
        correction_duration=1.0,
        logical_op_duration=3.0,
    )
    comparison = benchmark.pedantic(
        lambda: compare_schedules(params), rounds=1, iterations=1
    )
    print("\n[E14] Fig 3.3 -- QEC schedule comparison:")
    print(
        f"  window duration  no PF: "
        f"{comparison.without_frame.window_duration:6.1f}   "
        f"PF: {comparison.with_frame.window_duration:6.1f}"
    )
    print(
        f"  qubit idle frac  no PF: "
        f"{comparison.without_frame.idle_fraction:6.2%}   "
        f"PF: {comparison.with_frame.idle_fraction:6.2%}"
    )
    print(
        f"  decoder deadline no PF: "
        f"{comparison.without_frame.decoder_deadline:6.1f}   "
        f"PF: {comparison.with_frame.decoder_deadline:6.1f}"
    )
    print(
        f"  time saved: {comparison.time_saved:.1f} "
        f"({comparison.relative_time_saved:.1%}); "
        f"deadline relaxed x"
        f"{comparison.decoder_deadline_relaxation:.2f}"
    )
    assert comparison.time_saved == params.decode_duration + (
        params.correction_duration
    )
    assert comparison.decoder_deadline_relaxation > 1.0
    assert comparison.with_frame.idle_fraction == 0.0
