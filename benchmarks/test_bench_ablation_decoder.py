"""Ablation A1 -- the Tomita-Svore majority-vote rule.

DESIGN.md calls out the cross-round majority vote as a load-bearing
design choice of the windowed decoder: single ancilla-measurement
errors must not trigger corrections.  This ablation runs the LER
experiment with the vote disabled (decode the raw last round of each
window) and shows the LER degrading substantially at the same PER.
"""

from repro.experiments.ler import LerExperiment

PER = 2e-3
SAMPLES = 3
MAX_LOGICAL_ERRORS = 5


def _ler(use_majority_vote, seed_base):
    errors = 0
    windows = 0
    corrections = 0
    for sample in range(SAMPLES):
        result = LerExperiment(
            PER,
            use_pauli_frame=False,
            max_logical_errors=MAX_LOGICAL_ERRORS,
            seed=seed_base + sample,
            use_majority_vote=use_majority_vote,
        ).run()
        errors += result.logical_errors
        windows += result.windows
        corrections += result.corrections_commanded
    return errors / windows, corrections / windows


def test_bench_ablation_majority_vote(benchmark):
    with_vote, without_vote = benchmark.pedantic(
        lambda: (_ler(True, 900), _ler(False, 900)),
        rounds=1,
        iterations=1,
    )
    ler_voted, corrections_voted = with_vote
    ler_raw, corrections_raw = without_vote
    print("\n[A1] decoder ablation at PER = %.0e:" % PER)
    print(f"  with 3-round majority vote:   LER {ler_voted:.5f}, "
          f"corrections/window {corrections_voted:.3f}")
    print(f"  decoding raw last round only: LER {ler_raw:.5f}, "
          f"corrections/window {corrections_raw:.3f}")
    # The robust signature of the missing vote: ancilla measurement
    # errors (~8 ancillas x p per round) additionally trigger false
    # corrections, so the correction rate rises ...
    assert corrections_raw > corrections_voted * 1.05
    # ... and every false correction burns an extra noisy time slot,
    # so the LER may only degrade, never improve beyond noise.
    assert ler_raw > ler_voted * 0.8
