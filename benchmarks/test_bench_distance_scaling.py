"""E16 -- future work (ch. 6): distance scaling with the MWPM decoder.

The paper expects larger-distance surface codes to (i) lower the LER
below threshold and (ii) still gain nothing from a Pauli frame.  Part
(ii) is the analytic Fig. 5.27 (bench E12); this bench supplies part
(i): code-capacity LER of rotated surface codes d = 3 and d = 5 under
the Blossom/MWPM decoder, below and above the code-capacity threshold
(~10%), showing the defining crossover of section 2.5.1.
"""

from repro.experiments.distance import (
    format_distance_table,
    run_distance_scaling,
)

DISTANCES = (3, 5)
PER_VALUES = (0.02, 0.05, 0.15)
TRIALS = 1500


def test_bench_distance_scaling(benchmark):
    results = benchmark.pedantic(
        lambda: run_distance_scaling(
            distances=DISTANCES,
            per_values=PER_VALUES,
            trials=TRIALS,
            seed=42,
        ),
        rounds=1,
        iterations=1,
    )
    print("\n[E16] distance scaling (code capacity, MWPM):")
    print(format_distance_table(results))

    def ler(distance, index):
        return results[distance][index].logical_error_rate

    # Below threshold: d = 5 beats d = 3 ...
    assert ler(5, 0) < ler(3, 0)
    # ... and the gap narrows/inverts as p approaches/passes p_th.
    assert ler(5, 2) > ler(3, 2) * 0.8
    # LER is monotone in p for each distance.
    for distance in DISTANCES:
        series = [ler(distance, i) for i in range(len(PER_VALUES))]
        assert series == sorted(series)


def test_bench_circuit_level_block_scaling(benchmark):
    """Circuit-level part of E16: d = 3 vs d = 5 under the full QPDO
    noise model, block-decoded with space-time MWPM.

    Below threshold the d = 5 block failure rate must not exceed the
    d = 3 one despite each d = 5 block being longer (5 noisy rounds of
    49 qubits vs 3 rounds of 17).
    """
    from repro.experiments.memory import run_block_scaling

    results = benchmark.pedantic(
        lambda: run_block_scaling(
            distances=(3, 5),
            physical_error_rate=1e-3,
            trials=250,
            seed=77,
        ),
        rounds=1,
        iterations=1,
    )
    print("\n[E16b] circuit-level block scaling at p = 1e-3:")
    for result in results:
        print(
            f"  d={result.distance}: block LER "
            f"{result.logical_error_rate:.5f} "
            f"({result.logical_errors}/{result.windows} blocks)"
        )
    by_distance = {r.distance: r.logical_error_rate for r in results}
    # Allow equality-within-noise but never a clear inversion.
    assert by_distance[5] <= by_distance[3] + 0.01


def test_bench_d5_pauli_frame_equivalence(benchmark):
    """The future-work expectation itself: no Pauli-frame LER benefit
    at distance 5 either.

    Runs the windowed circuit-level memory experiment at d = 5 with
    and without a frame; the two arms must agree within the (wide)
    sampling noise, and the frame's theoretical best case is already
    capped at 3.03% (Fig. 5.27).
    """
    from repro.experiments.memory import CircuitLevelMemoryExperiment

    def run_both():
        outcomes = {}
        for use_frame in (False, True):
            errors = 0
            windows = 0
            for seed in (5, 6):
                result = CircuitLevelMemoryExperiment(
                    5,
                    3e-3,
                    use_pauli_frame=use_frame,
                    max_logical_errors=4,
                    seed=seed,
                    max_windows=50_000,
                ).run()
                errors += result.logical_errors
                windows += result.windows
            outcomes[use_frame] = errors / windows
        return outcomes

    outcomes = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print("\n[E16d] d = 5 Pauli-frame equivalence at p = 3e-3:")
    print(f"  LER without frame: {outcomes[False]:.5f}")
    print(f"  LER with frame:    {outcomes[True]:.5f}")
    ratio = outcomes[True] / max(outcomes[False], 1e-9)
    print(f"  ratio: {ratio:.2f} (paper expectation: ~1, never < 0.97)")
    # With ~8 logical errors per arm the sampling sigma is ~35%; the
    # arms must agree well within that, in either direction.
    assert 0.3 < ratio < 3.0
