"""E23 -- load test of the ``repro serve`` async decode/sweep service.

Three acceptance bars from ISSUE 7, measured against a live in-process
server (real sockets, real worker fleet):

* **p99 service latency** over hundreds of concurrent mixed-size jobs
  stays under a budget.  Latency is measured per job from its own
  ``started_at``/``finished_at`` status timestamps (execution time on
  the fleet), so the gate is independent of how deep the queue was —
  queueing delay is reported separately as context.
* **Warm-cache speedup >= 3x on repeated-structure jobs.**  "Cold" is
  what every CLI invocation pays today and the service exists to
  amortize (ISSUE 7): a throwaway one-shot service per job — worker
  process spawn + imports, LUT gather-table builds, per-arm reference
  stabilizer simulations.  "Warm" is the same job resubmitted to a
  long-lived fleet whose processes hold all of those.  The in-fleet
  cache contribution alone (first job on a fresh fleet vs repeats,
  i.e. reference-trace replay + LUT reuse with spawn already paid) is
  reported as context.
* **Worker-count invariance.**  The same submissions on a 1-worker
  and a 2-worker fleet must produce byte-identical ``job_result``
  documents (shard determinism end-to-end through the service).

Scale note: the default mixed-load replay uses a scaled-down job
count so the suite stays fast on CI hardware.  Approach paper-style
sustained load with::

    REPRO_BENCH_SERVE_JOBS=1000 \\
    PYTHONPATH=src python -m pytest benchmarks/test_bench_serve.py -s
"""

import asyncio
import json
import math
import os
import time

from repro.serve import ServeApp, ServeConfig
from repro.serve.app import _http_request

#: Total mixed-size jobs of the load replay ("hundreds").
TOTAL_JOBS = int(os.environ.get("REPRO_BENCH_SERVE_JOBS", "200"))
#: Fraction of the mix that is (cheap, varied-size) decode jobs; the
#: rest are small LER sweeps that exercise the full shard pipeline.
DECODE_FRACTION = 0.85
#: Gate on p99 per-job execution latency (seconds).
P99_BUDGET_SECONDS = float(
    os.environ.get("REPRO_BENCH_SERVE_P99_BUDGET", "5.0")
)
#: Required cold/warm ratio on repeated-structure LER jobs.
REQUIRED_WARM_SPEEDUP = 3.0
#: Concurrent in-flight submissions during the replay.
SUBMIT_BATCH = 32

SEED = 2017


def _decode_job(index: int):
    """One decode job; sizes vary so the mix is genuinely mixed."""
    shots = 2 + (index % 8)
    rounds = 3 + 2 * (index % 3)  # 3, 5, 7 -- odd, as decoding wants
    return {
        "job_id": f"load-dec-{index:04d}",
        "job_kind": "decode",
        "params": {
            "x_rounds": [[[0, 0, 0, 0]] * rounds] * shots,
            "z_rounds": [[[0, 1, 0, 0]] * rounds] * shots,
        },
    }


def _ler_job(index: int):
    return {
        "job_id": f"load-ler-{index:04d}",
        "job_kind": "ler",
        "params": {
            "physical_error_rate": 0.002,
            "shots": 4,
            "windows": 3,
            "shard_shots": 2,
            "seed": SEED + index,
        },
    }


#: The repeated-structure LER job of the warm-cache bar.  Small shot
#: count, enough windows that the job does real shard work on top of
#: the cold costs (spawn, LUT build, reference simulation).
WARM_JOB_PARAMS = {
    "physical_error_rate": 0.002,
    "shots": 2,
    "windows": 24,
    "shard_shots": 2,
    "seed": SEED,
}


def _serve_session(scenario, tmp_path, **overrides):
    """Run ``scenario(host, port)`` against a live in-process server."""

    async def runner():
        config = ServeConfig(
            port=0,
            spool=str(tmp_path / overrides.pop("spool", "spool")),
            **overrides,
        )
        app = ServeApp(config)
        server = await app.start()
        host, port = server.sockets[0].getsockname()[:2]
        try:
            return await scenario(host, port)
        finally:
            app.request_stop()
            await app.run_until_stopped(server)

    return asyncio.run(runner())


async def _submit_all(host, port, jobs):
    for start in range(0, len(jobs), SUBMIT_BATCH):
        batch = jobs[start:start + SUBMIT_BATCH]
        responses = await asyncio.gather(
            *(
                _http_request(host, port, "POST", "/v1/jobs", job)
                for job in batch
            )
        )
        for (status, doc), job in zip(responses, batch):
            assert status == 200, (job["job_id"], doc)


async def _await_all_done(host, port, expected, timeout=600.0):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while loop.time() < deadline:
        _, listing = await _http_request(
            host, port, "GET", "/v1/jobs", None
        )
        rows = listing["jobs"]
        if len(rows) >= expected and all(
            row["state"] in ("done", "failed", "cancelled")
            for row in rows
        ):
            return rows
        await asyncio.sleep(0.2)
    raise TimeoutError("load replay never drained")


def _percentile(values, q):
    ordered = sorted(values)
    rank = max(0, math.ceil(q * len(ordered)) - 1)
    return ordered[rank]


def test_bench_serve_mixed_load(benchmark, tmp_path):
    """Replay TOTAL_JOBS concurrent mixed jobs; gate p99 latency."""
    decode_count = int(TOTAL_JOBS * DECODE_FRACTION)
    jobs = [_decode_job(i) for i in range(decode_count)]
    jobs += [_ler_job(i) for i in range(TOTAL_JOBS - decode_count)]
    # Interleave sizes so the queue sees a genuinely mixed arrival
    # order rather than all-cheap-then-all-expensive.
    jobs.sort(key=lambda job: job["job_id"][::-1])

    async def replay(host, port):
        await _submit_all(host, port, jobs)
        return await _await_all_done(host, port, len(jobs))

    def run():
        return _serve_session(
            replay, tmp_path, workers=2, job_concurrency=2,
            spool="load-spool",
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    assert len(rows) == len(jobs)
    failed = [row for row in rows if row["state"] != "done"]
    assert not failed, failed[:3]

    execution = [
        row["finished_at"] - row["started_at"] for row in rows
    ]
    waiting = [row["started_at"] - row["queued_at"] for row in rows]
    makespan = max(row["finished_at"] for row in rows) - min(
        row["queued_at"] for row in rows
    )
    p50 = _percentile(execution, 0.50)
    p99 = _percentile(execution, 0.99)

    print(
        f"\n[E23] serve mixed load -- {len(jobs)} jobs "
        f"({decode_count} decode / {len(jobs) - decode_count} ler), "
        f"2 workers, 2 job slots:"
    )
    print(
        f"  execution latency: p50 {p50 * 1e3:7.1f} ms   "
        f"p99 {p99 * 1e3:7.1f} ms"
    )
    print(
        f"  queue wait:        p50 {_percentile(waiting, 0.5):7.2f} s "
        f"  p99 {_percentile(waiting, 0.99):7.2f} s"
    )
    print(
        f"  makespan: {makespan:6.1f} s "
        f"({len(jobs) / makespan:.1f} jobs/s)"
    )

    assert p99 <= P99_BUDGET_SECONDS, (
        f"p99 execution latency {p99:.2f}s exceeds the "
        f"{P99_BUDGET_SECONDS:.1f}s budget"
    )


def _warm_job(index: int):
    return {
        "job_id": f"warm-{index}",
        "job_kind": "ler",
        "params": dict(WARM_JOB_PARAMS),
    }


async def _run_one_job(host, port, job):
    """Submit one job, poll to done, return its execution latency."""
    await _http_request(host, port, "POST", "/v1/jobs", job)
    job_id = job["job_id"]
    while True:
        _, doc = await _http_request(
            host, port, "GET", f"/v1/jobs/{job_id}", None
        )
        if doc["state"] in ("done", "failed", "cancelled"):
            break
        await asyncio.sleep(0.02)
    assert doc["state"] == "done", doc
    return doc["finished_at"] - doc["started_at"]


def test_bench_serve_warm_cache_speedup(tmp_path):
    """Repeated-structure jobs must hit the warm fleet (>= 3x)."""
    repeats = 5

    # Cold: a throwaway service per job -- what a one-shot CLI
    # invocation pays.  Wall time covers fleet spawn (worker process
    # start + imports), LUT build, reference simulation, and the job.
    async def one_shot(host, port):
        await _run_one_job(host, port, _warm_job(0))
        return time.perf_counter()

    cold_start = time.perf_counter()
    cold_end = _serve_session(
        one_shot, tmp_path, workers=1, spool="cold-spool"
    )
    cold = cold_end - cold_start

    # Warm: the same structure on one long-lived fleet.  One worker,
    # so every repeat lands on the process whose caches the first job
    # filled and the measurement is deterministic.
    async def long_lived(host, port):
        return [
            await _run_one_job(host, port, _warm_job(index))
            for index in range(1 + repeats)
        ]

    latencies = _serve_session(
        long_lived, tmp_path, workers=1, spool="warm-spool"
    )
    fleet_cold = latencies[0]  # spawn already paid; LUT + ref cold
    warm = sorted(latencies[1:])[len(latencies[1:]) // 2]  # median
    speedup = cold / max(warm, 1e-9)

    print(
        f"\n[E23] serve warm-cache speedup -- repeated-structure ler "
        f"({WARM_JOB_PARAMS['windows']} windows x "
        f"{WARM_JOB_PARAMS['shots']} shots):"
    )
    print(f"  cold (one-shot service):  {cold * 1e3:8.1f} ms")
    print(f"  first job on warm fleet:  {fleet_cold * 1e3:8.1f} ms")
    print(f"  warm (median of {repeats}):     {warm * 1e3:8.1f} ms")
    print(
        f"  speedup: {speedup:.1f}x end-to-end, "
        f"{fleet_cold / max(warm, 1e-9):.1f}x from in-fleet caches"
    )

    assert speedup >= REQUIRED_WARM_SPEEDUP, (
        f"warm-cache speedup {speedup:.1f}x below the "
        f"{REQUIRED_WARM_SPEEDUP:.0f}x bar"
    )


def test_bench_serve_worker_count_invariance(tmp_path):
    """Fleet size must never leak into job_result documents."""
    jobs = [
        {
            "job_id": "inv-sweep",
            "job_kind": "sweep",
            "params": {
                "per_values": [0.004, 0.008],
                "shots": 16,
                "windows": 4,
                "shard_shots": 4,
                "seed": SEED,
            },
        },
        _ler_job(7),
        _decode_job(7),
    ]

    async def scenario(host, port):
        await _submit_all(host, port, jobs)
        await _await_all_done(host, port, len(jobs))
        results = {}
        for job in jobs:
            _, doc = await _http_request(
                host, port,
                "GET", f"/v1/jobs/{job['job_id']}/result", None,
            )
            results[job["job_id"]] = doc
        return results

    narrow = _serve_session(
        scenario, tmp_path, workers=1, spool="fleet1-spool"
    )
    wide = _serve_session(
        scenario, tmp_path, workers=2, spool="fleet2-spool"
    )

    assert set(narrow) == set(wide)
    for job_id in narrow:
        left = json.dumps(narrow[job_id], sort_keys=True)
        right = json.dumps(wide[job_id], sort_keys=True)
        assert left == right, f"{job_id} result differs across fleets"
    print(
        "\n[E23] serve worker-count invariance -- "
        f"{len(jobs)} job_result documents identical for "
        "1- and 2-worker fleets"
    )
