"""Ablation A3 -- ESM rounds per decoding window.

The paper's window holds two fresh ESM rounds plus the carried-over
round (Fig. 5.9).  This ablation varies the window depth: a one-round
window leaves the decoder a 2-round history (degraded vote), while a
three-round window votes over four (one dropped).  The LER per window
is not directly comparable across window sizes (windows have different
durations), so the bench reports LER per *ESM round* and requires the
paper's two-round geometry to be no worse than the one-round one.
"""

from repro.experiments.ler import LerExperiment

PER = 2e-3
SAMPLES = 3
MAX_LOGICAL_ERRORS = 4


def _ler_per_round(rounds_per_window, seed_base):
    errors = 0
    esm_rounds = 0
    for sample in range(SAMPLES):
        result = LerExperiment(
            PER,
            use_pauli_frame=False,
            max_logical_errors=MAX_LOGICAL_ERRORS,
            seed=seed_base + sample,
            rounds_per_window=rounds_per_window,
        ).run()
        errors += result.logical_errors
        esm_rounds += result.windows * rounds_per_window
    return errors / esm_rounds


def test_bench_ablation_window_depth(benchmark):
    series = benchmark.pedantic(
        lambda: {
            rounds: _ler_per_round(rounds, 600 + 37 * rounds)
            for rounds in (1, 2, 3)
        },
        rounds=1,
        iterations=1,
    )
    print("\n[A3] window-depth ablation at PER = %.0e:" % PER)
    print("  rounds/window   LER per ESM round")
    for rounds, value in sorted(series.items()):
        print(f"  {rounds:13d}   {value:.6f}")
    # All geometries must decode (finite LER per round, way below the
    # raw physical error accumulation of ~17 qubits x 8 slots x p).
    raw_accumulation = 17 * 8 * PER
    for value in series.values():
        assert 0 < value < raw_accumulation
    # The paper's 2-round window must not lose to the 1-round window
    # by more than sampling noise allows.
    assert series[2] < series[1] * 2.5
