"""E15 -- section 3.3: Pauli-gate fraction of compiled workloads.

The paper compiles ScaffCC example programs and finds "up to 7% Pauli
gates".  We regenerate the census over the synthetic workload suite
(the ScaffCC substitution is documented in DESIGN.md): the suite must
contain workloads with a single-digit-percent Pauli fraction, and the
teleportation workload (byproduct-operator heavy) must be the richest.
"""

from repro.circuits import census, workloads


def _census_all():
    return {
        name: census(circuit)
        for name, circuit in workloads.all_workloads().items()
    }


def test_bench_pauli_gate_census(benchmark):
    results = benchmark.pedantic(_census_all, rounds=1, iterations=1)
    print("\n[E15] Pauli-gate census of the workload suite:")
    print("  workload    ops    pauli   pauli %   pauli-only slots %")
    for name, result in sorted(results.items()):
        print(
            f"  {name:10s} {result.total_operations:5d}  "
            f"{result.pauli_gate_count:5d}  "
            f"{100 * result.pauli_fraction:7.2f}  "
            f"{100 * result.pauli_slot_fraction:18.2f}"
        )
    fractions = {
        name: result.pauli_fraction for name, result in results.items()
    }
    # The compiled-program regime of the paper: a few percent.
    assert 0.01 < fractions["clifford_t"] < 0.12
    assert 0.0 < fractions["adder"] < 0.25
    # Teleportation byproducts dominate.
    assert fractions["teleport"] == max(fractions.values())
    # Every Pauli gate here is one a frame executes with 100% fidelity
    # in classical logic; none would reach the hardware.
    for result in results.values():
        assert result.pauli_gate_count > 0
