"""E12 -- Fig. 5.27 / Eqs 5.5-5.12: analytic improvement upper bound.

Regenerates the closing figure: the best-case relative LER improvement
a Pauli frame can buy, ``B(d) = 1/((d-1)*ts_ESM + 1)``, for
``ts_ESM = 8``.  The paper's reading: 5.88% at d = 3, under 3% from
d = 5 -- hence no LER benefit at any useful distance.
"""

import pytest

from repro.experiments.analytic import (
    format_upper_bound_table,
    upper_bound_series,
)

DISTANCES = tuple(range(3, 12))


def test_bench_fig_5_27_upper_bound(benchmark):
    series = benchmark.pedantic(
        lambda: upper_bound_series(DISTANCES, ts_esm=8),
        rounds=1,
        iterations=1,
    )
    print("\n[E12] Fig 5.27 -- upper bound on relative LER improvement:")
    print(format_upper_bound_table(DISTANCES))
    by_distance = dict(series)
    assert by_distance[3] == pytest.approx(1 / 17)
    assert by_distance[5] == pytest.approx(1 / 33)
    # "quickly decreases to values below 3%" (section 5.3.2).
    assert all(
        bound < 0.031 for distance, bound in series if distance >= 5
    )
    # Monotone decreasing in d.
    bounds = [bound for _d, bound in series]
    assert bounds == sorted(bounds, reverse=True)
