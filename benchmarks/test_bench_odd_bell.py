"""E6 -- Fig. 5.7: odd-Bell-state histograms with and without a frame.

Prepares ``(|01>_L + |10>_L)/sqrt(2)`` on two ninja stars (Fig. 5.6),
measures both logical qubits repeatedly, and prints the two histograms.
Both must contain only the odd outcomes ``01`` and ``10``.
"""

from repro.experiments.verification import run_odd_bell_state_bench

ITERATIONS = 12  # the paper uses 100; state-vector inits dominate cost


def test_bench_fig_5_7_odd_bell_histograms(benchmark):
    report = benchmark.pedantic(
        lambda: run_odd_bell_state_bench(iterations=ITERATIONS, seed=77),
        rounds=1,
        iterations=1,
    )
    print(f"\n[E6] Fig 5.7 -- odd Bell state ({ITERATIONS} iterations):")
    print("  state   with frame   without frame")
    for key in ("00", "01", "10", "11"):
        print(
            f"  |{key}>    "
            f"{report.histogram_with_frame.get(key, 0):10d}   "
            f"{report.histogram_without_frame.get(key, 0):13d}"
        )
    assert report.both_valid
    assert sum(report.histogram_with_frame.values()) == ITERATIONS
    assert sum(report.histogram_without_frame.values()) == ITERATIONS
