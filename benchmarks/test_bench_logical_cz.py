"""E4 -- Table 5.6: the transversal CZ_L truth table with phases.

The distinguishing row is ``|11>_L -> -|11>_L``: the simulated global
phase must be exactly -1, which only a state-vector back-end can show.
"""

import pytest

from repro.circuits import Circuit
from repro.codes.surface17 import NinjaStarLayer
from repro.qpdo import StateVectorCore


def _row(control_bit, target_bit, seed):
    core = StateVectorCore(seed=seed)
    layer = NinjaStarLayer(core)
    layer.createqubit(2)
    circuit = Circuit()
    circuit.add("prep_z", 0)
    circuit.add("prep_z", 1)
    if control_bit:
        circuit.add("x", 0)
    if target_bit:
        circuit.add("x", 1)
    layer.run(circuit)
    before = core.getquantumstate()
    cz = Circuit()
    cz.add("cz", 0, 1)
    layer.run(cz)
    after = core.getquantumstate()
    assert after.equal_up_to_global_phase(before)
    return complex(after.global_phase_relative_to(before))


def _table():
    rows = []
    for control_bit, target_bit in [(0, 0), (1, 0), (0, 1), (1, 1)]:
        phase = _row(
            control_bit, target_bit, seed=300 + control_bit * 2 + target_bit
        )
        expected = -1.0 if control_bit and target_bit else 1.0
        rows.append((control_bit, target_bit, expected, phase))
    return rows


def test_bench_table_5_6_cz_truth_table(benchmark):
    rows = benchmark.pedantic(_table, rounds=1, iterations=1)
    print("\n[E4] Table 5.6 -- CZ_L truth table:")
    print("  initial |c t>_L   expected          simulated")
    for control_bit, target_bit, expected, phase in rows:
        sign = "-" if expected < 0 else " "
        print(
            f"  |{control_bit}{target_bit}>_L          "
            f"{sign}|{control_bit}{target_bit}>_L           "
            f"({phase.real:+.4f}{phase.imag:+.4f}j)"
            f"|{control_bit}{target_bit}>_L"
        )
    for _c, _t, expected, phase in rows:
        assert phase == pytest.approx(expected, abs=1e-6)
