"""Ablation A2 -- Pauli frame placement relative to the noise source.

DESIGN.md notes a deliberate clarification of the paper's Fig. 5.8:
this library places the noise layer directly above the core so that
operations absorbed by the frame are never charged errors or idle
time.  This ablation also runs the *literal* Fig. 5.8 stacking (error
layer above the frame) and prints both LERs.  In the literal stacking
the correction commands are noised even though they never reach the
hardware, so its LER can only be equal or worse; with the physical
placement the frame arm matches the frame-less arm -- the paper's
headline result.
"""

from repro.experiments.ler import LerExperiment

PER = 5e-3
SAMPLES = 3
MAX_LOGICAL_ERRORS = 4


def _ler(frame_placement, seed_base):
    errors = 0
    windows = 0
    for sample in range(SAMPLES):
        result = LerExperiment(
            PER,
            use_pauli_frame=True,
            max_logical_errors=MAX_LOGICAL_ERRORS,
            seed=seed_base + sample,
            frame_placement=frame_placement,
        ).run()
        errors += result.logical_errors
        windows += result.windows
    return errors / windows


def test_bench_ablation_frame_placement(benchmark):
    physical, paper = benchmark.pedantic(
        lambda: (_ler("physical", 300), _ler("paper", 300)),
        rounds=1,
        iterations=1,
    )
    print("\n[A2] frame placement ablation at PER = %.0e:" % PER)
    print(f"  LER, noise below frame (physical): {physical:.5f}")
    print(f"  LER, noise above frame (Fig. 5.8 literal): {paper:.5f}")
    # Both placements must produce working QEC (finite, same order of
    # magnitude); the literal placement may only be similar or worse,
    # never meaningfully better.
    assert 0 < physical < 1
    assert 0 < paper < 1
    assert paper > physical * 0.4
