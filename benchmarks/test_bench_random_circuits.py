"""E5 -- section 5.2.2 / Listings 5.3-5.6: random-circuit verification.

Runs random Pauli+Clifford+T circuits with and without a Pauli frame
layer and compares final quantum states up to global phase after
flushing the frame.  The paper runs 100 iterations of 10 qubits x 1000
gates; the bench scales down but keeps the mixed gate set and the
equal-up-to-global-phase acceptance criterion.
"""

from repro.experiments.verification import run_random_circuit_verification

ITERATIONS = 10
NUM_QUBITS = 5
NUM_GATES = 120


def test_bench_random_circuit_verification(benchmark):
    report = benchmark.pedantic(
        lambda: run_random_circuit_verification(
            iterations=ITERATIONS,
            num_qubits=NUM_QUBITS,
            num_gates=NUM_GATES,
            seed=55,
        ),
        rounds=1,
        iterations=1,
    )
    print(
        f"\n[E5] random-circuit Pauli frame verification "
        f"({ITERATIONS} x {NUM_QUBITS} qubits x {NUM_GATES} gates):"
    )
    matches = sum(1 for o in report.outcomes if o.states_match)
    dirty = sum(1 for o in report.outcomes if o.frame_was_dirty)
    print(f"  states match (up to global phase): {matches}/{ITERATIONS}")
    print(f"  frames non-trivial before flush:   {dirty}/{ITERATIONS}")
    print(f"  Pauli gates filtered in total:     "
          f"{report.total_gates_filtered}")
    for outcome in report.outcomes[:3]:
        print(
            f"  iteration {outcome.iteration}: "
            f"global phase {outcome.global_phase:+.4f}"
        )
    assert report.all_match
    assert report.total_gates_filtered > 0
