"""E7 -- Figs 5.11-5.16: PER vs LER with and without a Pauli frame.

Regenerates the central result of the paper at scaled statistics: the
logical error rate of an idling SC17 qubit across a PER sweep, in both
arms.  The paper's conclusion -- the curves coincide within sampling
noise -- must hold: the mean LER of the two arms never differs by more
than a small multiple of the sampling sigma.

Scale note: the paper sweeps ~100 PER values with 10-20 seeds x 50
logical errors each; this bench uses the grid in
``benchmarks/conftest.py``.  The library API (`run_ler_sweep`) takes
the paper-scale parameters directly.
"""

from repro.experiments.stats import pseudo_threshold


def test_bench_figs_5_11_to_5_16_ler_sweep(benchmark, ler_sweep_x):
    # The sweep itself is computed in the shared fixture; time the
    # (cheap) series extraction so pytest-benchmark has a target while
    # the printed table carries the physics.
    series = benchmark.pedantic(
        lambda: (ler_sweep_x.series(False), ler_sweep_x.series(True)),
        rounds=1,
        iterations=1,
    )
    without_frame, with_frame = series
    print("\n[E7] Figs 5.11-5.16 -- PER vs LER (X errors, scaled):")
    print("  PER        LER(no PF)   LER(PF)")
    for per, lf, lt in zip(
        ler_sweep_x.per_values(), without_frame, with_frame
    ):
        print(f"  {per:9.2e}  {lf:11.4e}  {lt:11.4e}")
    crossing = pseudo_threshold(
        ler_sweep_x.per_values(), without_frame
    )
    print(f"  pseudo-threshold estimate (no PF): {crossing}")

    # Shape 1: LER grows with PER in both arms.
    assert without_frame == sorted(without_frame)
    assert with_frame == sorted(with_frame)
    # Shape 2: the two arms agree within sampling noise everywhere.
    for point in ler_sweep_x.points:
        sigma = max(point.comparison.sigma_max, 1e-4)
        assert abs(point.comparison.delta_ler) < 6 * sigma
    # Shape 3: in this (above-threshold) scaled regime LER > PER, so
    # the pseudo-threshold sits below the sampled grid -- consistent
    # with the paper's 3e-4.
    for per, ler in zip(ler_sweep_x.per_values(), without_frame):
        assert ler > per
