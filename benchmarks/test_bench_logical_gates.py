"""E2 -- section 5.1.4: logical X_L / Z_L / H_L gate algebra.

Regenerates the paper's verification relations on the full stack:
``Z_L|0>_L = |0>_L``, ``Z_L|1>_L = -|1>_L``, ``X_L|+>_L = |+>_L`` and
``Z_L|+>_L = |->_L`` (orthogonal to ``|+>_L``).
"""

import numpy as np

from repro.circuits import Circuit
from repro.codes.surface17 import NinjaStarLayer
from repro.qpdo import StateVectorCore


def _stack(seed):
    core = StateVectorCore(seed=seed)
    layer = NinjaStarLayer(core)
    layer.createqubit(1)
    return core, layer


def _apply(layer, *names):
    circuit = Circuit()
    for name in names:
        circuit.add(name, 0)
    layer.run(circuit)


def _relations():
    rows = []
    core, layer = _stack(31)
    _apply(layer, "prep_z")
    zero = core.getquantumstate().amplitudes
    _apply(layer, "z")
    rows.append(
        ("Z_L|0>_L == |0>_L",
         np.allclose(core.getquantumstate().amplitudes, zero))
    )
    core, layer = _stack(32)
    _apply(layer, "prep_z", "x")
    one = core.getquantumstate().amplitudes
    _apply(layer, "z")
    rows.append(
        ("Z_L|1>_L == -|1>_L",
         np.allclose(core.getquantumstate().amplitudes, -one))
    )
    core, layer = _stack(33)
    _apply(layer, "prep_z", "h")
    plus = core.getquantumstate().amplitudes
    _apply(layer, "x")
    rows.append(
        ("X_L|+>_L == |+>_L",
         np.allclose(core.getquantumstate().amplitudes, plus))
    )
    core, layer = _stack(34)
    _apply(layer, "prep_z", "h")
    plus = core.getquantumstate().amplitudes
    _apply(layer, "z")
    overlap = abs(np.vdot(plus, core.getquantumstate().amplitudes))
    rows.append(("Z_L|+>_L orthogonal to |+>_L", overlap < 1e-9))
    return rows


def test_bench_logical_gate_relations(benchmark):
    rows = benchmark.pedantic(_relations, rounds=1, iterations=1)
    print("\n[E2] logical gate relations (section 5.1.4):")
    for name, ok in rows:
        print(f"  {name}: {'ok' if ok else 'FAILED'}")
    assert all(ok for _name, ok in rows)
