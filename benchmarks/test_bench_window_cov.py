"""E9 -- Figs 5.19/5.20: coefficient of variation of the window count.

Every run terminates at a fixed number of logical errors, so the LER
spread is driven entirely by the spread of the window count R.  The
paper finds cv(R) roughly constant (~13%) across PER values, which
explains the growing absolute LER standard deviation (section 5.3.2).
"""

import math


def test_bench_figs_5_19_5_20_window_cov(benchmark, ler_sweep_x):
    covs = benchmark.pedantic(
        lambda: (
            ler_sweep_x.window_cov_series(False),
            ler_sweep_x.window_cov_series(True),
        ),
        rounds=1,
        iterations=1,
    )
    without_frame, with_frame = covs
    print("\n[E9] Figs 5.19/5.20 -- cv of window counts:")
    print("  PER        cv(no PF)  cv(PF)")
    for per, cf, ct in zip(
        ler_sweep_x.per_values(), without_frame, with_frame
    ):
        print(f"  {per:9.2e}  {cf:9.3f}  {ct:9.3f}")
    # With m logical errors per run, cv(R) ~ 1/sqrt(m); the paper's
    # m=50 gives ~13%, our scaled m gives a proportionally larger but
    # still O(1/sqrt(m)) spread.  Bound it loosely.
    m = ler_sweep_x.points[0].without_frame[0].logical_errors
    ceiling = 4.0 / math.sqrt(max(m, 1))
    for value in without_frame + with_frame:
        assert 0.0 <= value < ceiling
