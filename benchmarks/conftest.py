"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at
*scaled-down* statistics (the paper stops each run at 50 logical
errors and samples 10-20 seeds per PER point over ~100 PER values;
CPU-days in pure Python).  The scaled settings below keep the full
harness in the minutes range while preserving every qualitative
shape the paper reports.  Crank them up via the constants here to
approach paper scale.

The LER sweep (E7) is computed once per session and shared by the
difference/CoV/t-test/savings benchmarks (E8-E11), mirroring how the
paper derives Figs 5.15-5.26 from one data set.
"""

import pytest

from repro.experiments.sweep import run_ler_sweep

#: PER grid of the scaled sweep (the paper: 1e-4..1e-2, step 1e-4).
SWEEP_PER_VALUES = (3e-3, 6e-3, 1e-2)
#: Independent simulations per PER and arm (the paper: 10-20).
SWEEP_SAMPLES = 3
#: Logical errors per run before termination (the paper: 50).
SWEEP_MAX_LOGICAL_ERRORS = 4


@pytest.fixture(scope="session")
def ler_sweep_x():
    """The shared scaled X-error LER sweep (with and without frame)."""
    return run_ler_sweep(
        per_values=SWEEP_PER_VALUES,
        error_kind="x",
        samples=SWEEP_SAMPLES,
        max_logical_errors=SWEEP_MAX_LOGICAL_ERRORS,
        seed=2017,
    )
