"""E1 -- Listings 5.1/5.2: the logical |0>/|1> states of a ninja star.

Regenerates the paper's printed nine-qubit quantum states after
fault-tolerant initialisation and after a logical X, and checks the
defining structure: 16 equal-amplitude terms of even (|0>_L) or odd
(|1>_L) parity.
"""

from repro.circuits import Circuit
from repro.codes.surface17 import NinjaStarLayer
from repro.qpdo import StateVectorCore


def _initialize_and_read(seed, apply_x):
    core = StateVectorCore(seed=seed)
    layer = NinjaStarLayer(core)
    layer.createqubit(1)
    circuit = Circuit("init")
    circuit.add("prep_z", 0)
    if apply_x:
        circuit.add("x", 0)
    layer.run(circuit)
    return layer.data_quantum_state(0)


def test_bench_listing_5_1_logical_zero(benchmark):
    state = benchmark.pedantic(
        lambda: _initialize_and_read(2016, apply_x=False),
        rounds=1,
        iterations=1,
    )
    terms = state.nonzero_terms()
    print("\n[E1] |0>_L data-qubit state (Listing 5.1):")
    print(state.format_terms())
    assert len(terms) == 16
    for index, amplitude in terms:
        assert abs(abs(amplitude) - 0.25) < 1e-9
        assert bin(index).count("1") % 2 == 0


def test_bench_listing_5_2_logical_one(benchmark):
    state = benchmark.pedantic(
        lambda: _initialize_and_read(2016, apply_x=True),
        rounds=1,
        iterations=1,
    )
    terms = state.nonzero_terms()
    print("\n[E1] |1>_L data-qubit state (Listing 5.2):")
    print(state.format_terms())
    assert len(terms) == 16
    for index, _amplitude in terms:
        assert bin(index).count("1") % 2 == 1
